"""Tests for the overload-hardened runtime.

Four contracts from DESIGN.md §15:

* the deadline watchdog commits a carryover epoch on breach — last
  validated allocation kept, staleness recorded, churn deferred (not
  lost), and every breach paired with a staleness record;
* the shedding ladder climbs deterministically under a seeded breach
  burst (queue-shed -> freeze -> clamp) and steps back down after
  clean epochs;
* an unstressed wrapped run is bitwise identical to the bare runtime —
  protection enabled but never triggered costs nothing;
* worker crash/hang inside the sharded solve degrades to the serial
  fallback with bitwise-identical shares on the 12-scenario library.
"""

import pickle

import numpy as np
import pytest

from repro import obs
from repro.core.contention import ContentionAnalysis
from repro.obs import MetricsRegistry
from repro.obs.registry import using_registry
from repro.perf import shard as shard_mod
from repro.perf.shard import ShardResultError, ShardedSolver
from repro.resilience import (
    AllocatorRuntime,
    ChurnEvent,
    EpochDeadline,
    EpochDeadlineExceeded,
    FaultPlan,
    OverloadConfig,
    OverloadRuntime,
    RuntimeConfig,
    WorkerCrash,
    WorkerFaultInjector,
    WorkerHang,
    measure_sustainable_rate,
    run_overload,
    run_overload_case,
)
from repro.resilience.admission import REASON_OVERLOAD, REASON_QUEUE_AGED
from repro.resilience.overload import (
    RUNG_CLAMP,
    RUNG_FREEZE,
    RUNG_NAMES,
    RUNG_NORMAL,
    RUNG_QUEUE,
)
from repro.scenarios import (
    cross,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    grid_scenario,
    parallel_chains,
    star,
)
from repro.sim.rng import RngRegistry
from repro.traffic import ArrivalTrace, FlowArrival, OpenLoopConfig, \
    draw_arrival_trace

LIBRARY = {
    "fig1": fig1.make_scenario,
    "fig2_single": fig2.make_single_hop_scenario,
    "fig2_multi": fig2.make_multi_hop_scenario,
    "fig3_chain": fig3.make_chain_scenario,
    "fig3_shortcut": fig3.make_shortcut_scenario,
    "fig4": fig4.make_scenario,
    "fig5": fig5.make_scenario,
    "fig6": fig6.make_scenario,
    "parallel_chains": parallel_chains,
    "cross": cross,
    "grid": grid_scenario,
    "star": star,
}


@pytest.fixture(autouse=True)
def _no_active_registry():
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def _flow_up(epoch, *flows):
    return [ChurnEvent(epoch, "flow-up", flow=f) for f in flows]


class TestEpochDeadline:
    def test_none_budget_never_fires(self):
        deadline = EpochDeadline(None)
        deadline.arm()
        deadline.check("solve")  # must not raise

    def test_unarmed_watchdog_is_inert(self):
        clock = FakeClock()
        deadline = EpochDeadline(1.0, clock=clock)
        clock.t = 100.0
        deadline.check("solve")  # never armed: no-op

    def test_breach_carries_point_and_elapsed(self):
        clock = FakeClock()
        deadline = EpochDeadline(10.0, clock=clock)
        deadline.arm()
        clock.t = 0.005
        deadline.check("solve")  # 5 ms < 10 ms budget
        clock.t = 0.025
        with pytest.raises(EpochDeadlineExceeded) as excinfo:
            deadline.check("validate")
        assert excinfo.value.point == "validate"
        assert excinfo.value.budget_ms == 10.0
        assert excinfo.value.elapsed_ms == pytest.approx(25.0)

    def test_rearm_resets_elapsed(self):
        clock = FakeClock()
        deadline = EpochDeadline(10.0, clock=clock)
        deadline.arm()
        clock.t = 1.0
        deadline.arm()
        deadline.check("solve")  # fresh arm: elapsed 0 again


class TestBreachCommit:
    def _wrapped(self, scenario, **config):
        runtime = AllocatorRuntime(scenario)
        return OverloadRuntime(runtime, OverloadConfig(**config))

    def test_breach_commits_last_validated_allocation(self):
        harness = self._wrapped(fig1.make_scenario())
        before = harness.advance(_flow_up(0, "1", "2"))
        harness.force_breach_epochs = {1}
        record = harness.advance([])
        assert record.status == "deadline-breach"
        assert record.epoch == 1
        assert harness.runtime.epoch == 1
        # The last validated shares carry over unchanged.
        assert record.shares == before.shares
        assert record.active == before.active

    def test_breach_defers_events_instead_of_dropping(self):
        scenario = fig4.make_scenario()
        flows = sorted(scenario.flow_ids)
        harness = self._wrapped(scenario)
        harness.advance(_flow_up(0, *flows[:2]))
        harness.force_breach_epochs = {1}
        breach = harness.advance(_flow_up(1, flows[2]))
        assert flows[2] not in breach.active
        assert harness.deferred  # the arrival is queued for retry
        healed = harness.advance([])
        assert flows[2] in healed.active
        assert not harness.deferred

    def test_every_breach_pairs_with_a_staleness_record(self):
        with using_registry(MetricsRegistry()) as reg:
            harness = self._wrapped(fig1.make_scenario())
            harness.advance(_flow_up(0, "1", "2"))
            harness.force_breach_epochs = {1, 3}
            for _ in range(4):
                harness.advance([])
            breached = {row["epoch"] for row in harness.overload_journal
                        if row["breached"]}
            recorded = {r["epoch"] for r in harness.staleness_records}
            assert breached == recorded == {1, 3}
            assert reg.counters["runtime.epoch.deadline_breach"].value == 2
            assert reg.histograms["runtime.epoch.staleness_age"].values

    def test_staleness_age_accumulates_and_resets(self):
        harness = self._wrapped(fig1.make_scenario())
        harness.advance(_flow_up(0, "1", "2"))
        harness.force_breach_epochs = {1, 2}
        harness.advance([])
        harness.advance([])
        assert harness.stale_age == {"1": 2, "2": 2}
        assert harness.staleness_records[-1]["age_max"] == 2
        harness.advance([])  # clean epoch re-validates
        assert harness.stale_age == {"1": 0, "2": 0}

    def test_breach_rolls_back_aborted_admission_decisions(self):
        scenario = fig4.make_scenario()
        flows = sorted(scenario.flow_ids)
        harness = self._wrapped(scenario)
        harness.advance(_flow_up(0, *flows[:2]))
        logged = len(harness.runtime.admission.decisions)
        harness.force_breach_epochs = {1}
        harness.advance(_flow_up(1, flows[2]))
        # The aborted epoch left no trace in the admission log.
        assert len(harness.runtime.admission.decisions) == logged


class TestSheddingLadder:
    def _stressed(self, breaches, **config):
        config.setdefault("freeze_after", 2)
        config.setdefault("clamp_after", 3)
        config.setdefault("recover_after", 2)
        runtime = AllocatorRuntime(fig4.make_scenario())
        harness = OverloadRuntime(runtime, OverloadConfig(**config))
        flows = sorted(runtime.scenario.flow_ids)
        harness.advance(_flow_up(0, *flows[:2]))
        harness.force_breach_epochs = set(breaches)
        return harness, flows

    def test_each_rung_reached_deterministically(self):
        harness, _ = self._stressed({1, 2, 3})
        for _ in range(3):
            harness.advance([])
        rungs = [row["rung"] for row in harness.overload_journal]
        # Rung used per epoch: escalation lands after the breach.
        assert rungs == ["normal", "normal", "queue-shed", "freeze"]
        assert harness.rung == RUNG_CLAMP

    def test_recovery_steps_down_one_rung_at_a_time(self):
        harness, _ = self._stressed({1, 2, 3})
        for _ in range(3):
            harness.advance([])
        assert harness.rung == RUNG_CLAMP
        journey = []
        for _ in range(6):  # six clean epochs: three de-escalations
            harness.advance([])
            journey.append(harness.rung)
        assert journey == [RUNG_CLAMP, RUNG_FREEZE, RUNG_FREEZE,
                           RUNG_QUEUE, RUNG_QUEUE, RUNG_NORMAL]

    def test_clamp_epoch_status_and_validity(self):
        harness, _ = self._stressed({1, 2, 3})
        for _ in range(3):
            harness.advance([])
        record = harness.advance([])  # first epoch run at the clamp rung
        assert record.status == "overload-clamp"
        assert record.ok, record.failed_checks()
        assert harness.overload_journal[-1]["rung"] == "clamp"

    def test_freeze_epoch_queues_arrivals_unprobed(self):
        harness, flows = self._stressed({1, 2}, clamp_after=99)
        harness.advance([])
        harness.advance([])
        assert harness.rung == RUNG_FREEZE
        record = harness.advance(_flow_up(3, flows[2]))
        (decision,) = [d for d in record.admissions
                       if d["flow"] == flows[2]]
        assert decision["action"] == "queue"
        assert decision["reason"] == REASON_OVERLOAD

    def test_shed_rungs_tighten_the_queue_age_bound(self):
        harness, flows = self._stressed(
            {1, 2}, shed_queue_age=1, clamp_after=99
        )
        # Reach the freeze rung, queue an arrival unprobed, then let it
        # age while the ladder is still shedding: once its age exceeds
        # shed_queue_age it is evicted as queue-aged.
        harness.advance([])
        harness.advance([])
        assert harness.rung == RUNG_FREEZE
        harness.advance(_flow_up(3, flows[2]))
        assert flows[2] in harness.runtime.admission.waiting
        harness.advance([])  # age 1: still within the bound
        assert flows[2] in harness.runtime.admission.waiting
        harness.advance([])  # age 2 > 1: shed
        aged = [d for d in harness.runtime.admission.decisions
                if d.reason == REASON_QUEUE_AGED]
        assert [d.flow_id for d in aged] == [flows[2]]
        assert flows[2] not in harness.runtime.admission.waiting

    def test_ladder_counters_and_gauge(self):
        with using_registry(MetricsRegistry()) as reg:
            harness, _ = self._stressed({1, 2, 3})
            for _ in range(3):
                harness.advance([])
            for _ in range(6):
                harness.advance([])
            assert reg.counters["runtime.overload.escalations"].value == 3
            assert reg.counters["runtime.overload.deescalations"].value == 3
            assert reg.gauges["runtime.overload.rung"].value == RUNG_NORMAL


class TestUnstressedPassThrough:
    def test_bitwise_identity_with_bare_runtime(self):
        scenario = fig4.make_scenario()
        flows = sorted(scenario.flow_ids)
        epochs = [
            _flow_up(0, *flows[:2]),
            _flow_up(1, flows[2]),
            [ChurnEvent(2, "flow-down", flow=flows[0])],
            [],
        ]
        bare = AllocatorRuntime(scenario, RuntimeConfig(hysteresis=0.3))
        wrapped = OverloadRuntime(
            AllocatorRuntime(scenario, RuntimeConfig(hysteresis=0.3))
        )
        for events in epochs:
            assert bare.advance(events) == wrapped.advance(events)
        assert bare.state_payload() == wrapped.runtime.state_payload()
        assert wrapped.stats()["breaches"] == 0
        assert all(row["rung"] == "normal"
                   for row in wrapped.overload_journal)

    def test_run_trace_serves_and_departs_flows(self):
        scenario = fig4.make_scenario()
        flows = sorted(scenario.flow_ids)
        harness = OverloadRuntime(AllocatorRuntime(scenario))
        trace = ArrivalTrace(
            epochs=6,
            arrivals=(
                FlowArrival(0, flows[0], duration=2),
                FlowArrival(1, flows[1], duration=1),
            ),
        )
        records = harness.run_trace(trace)
        assert len(records) == 6
        # Finite flows: both served their time and departed.
        assert harness.runtime.active == set()
        stats = harness.stats()
        assert stats["epochs"] == 6
        assert stats["breaches"] == 0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] > 0.0


def _solve_or_error(solver, analysis):
    try:
        return solver.solve(analysis)
    except ShardResultError:
        return "shard-result-error"


class TestWorkerFaultEquivalence:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_worker_crash_matches_serial_solve(self, name):
        scenario = LIBRARY[name]()
        analysis = ContentionAnalysis(scenario)
        reference = _solve_or_error(ShardedSolver(jobs=1), analysis)
        injector = WorkerFaultInjector(
            crashes=(WorkerCrash(component=0, attempts=1),)
        )
        stressed = ShardedSolver(
            jobs=2, task_timeout=5.0, task_retries=2,
            fault_injector=injector,
        )
        assert _solve_or_error(stressed, analysis) == reference

    def test_worker_hang_matches_serial_solve(self):
        # fig4 has four contending groups, so jobs=2 really fans out to
        # the pool and the hang can bite a live worker.
        analysis = ContentionAnalysis(fig4.make_scenario())
        reference = ShardedSolver(jobs=1).solve(analysis)
        injector = WorkerFaultInjector(
            hangs=(WorkerHang(component=0, seconds=0.75, attempts=1),)
        )
        stressed = ShardedSolver(
            jobs=2, task_timeout=0.25, task_retries=2,
            fault_injector=injector,
        )
        with using_registry(MetricsRegistry()) as reg:
            assert stressed.solve(analysis) == reference
            assert reg.counters["perf.parallel.task_timeouts"].value >= 1
            assert reg.counters["perf.parallel.task_retries"].value >= 1

    def test_exhausted_retries_fall_back_to_serial(self):
        analysis = ContentionAnalysis(fig4.make_scenario())
        reference = ShardedSolver(jobs=1).solve(analysis)
        # The crash budget outlasts the retry budget, so the task can
        # only complete through the deterministic in-process fallback.
        injector = WorkerFaultInjector(
            crashes=(WorkerCrash(component=0, attempts=99),)
        )
        stressed = ShardedSolver(
            jobs=2, task_timeout=5.0, task_retries=1,
            fault_injector=injector,
        )
        with using_registry(MetricsRegistry()) as reg:
            assert stressed.solve(analysis) == reference
            assert reg.counters["perf.parallel.serial_fallbacks"].value >= 1


class TestShardResultError:
    def test_pickle_round_trip_keeps_component_and_span(self):
        err = ShardResultError("boom", component=3, span_id="abc123")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ShardResultError)
        assert isinstance(clone, RuntimeError)
        assert (clone.component, clone.span_id) == (3, "abc123")
        assert str(clone) == "boom"

    def test_bare_worker_exception_is_wrapped_and_counted(self, monkeypatch):
        analysis = ContentionAnalysis(fig1.make_scenario())

        def explode(problem, backend):
            raise ValueError("synthetic solver failure")

        monkeypatch.setattr(shard_mod, "_solve_component_with", explode)
        with using_registry(MetricsRegistry()) as reg:
            with pytest.raises(ShardResultError) as excinfo:
                ShardedSolver(jobs=1).solve(analysis)
            assert "synthetic solver failure" in str(excinfo.value)
            assert reg.counters["runtime.shard.worker_errors"].value == 1


class TestOverloadCampaign:
    def test_case_checks_pass_under_forced_stalls(self):
        scenario = fig4.make_scenario()
        trace = draw_arrival_trace(
            np.random.default_rng(3), sorted(scenario.flow_ids), 10,
            OpenLoopConfig(rate=3.0),
        )
        case = run_overload_case(
            scenario, trace, hysteresis=0.3, max_queue_age=4,
            stall_epochs=2,
        )
        assert case.ok, case.failed_checks()
        assert case.breaches == 2
        assert case.epochs_run == 10
        assert "deadline-breach" in case.epoch_statuses
        names = [name for name, _ok, _d in case.checks]
        assert "overload.breach_recorded" in names
        assert "overload.final_clique_capacity" in names

    def test_sustainable_rate_comes_from_the_ladder(self):
        scenario = fig4.make_scenario()
        rate = measure_sustainable_rate(
            scenario, RngRegistry(0), 0, epochs=4,
            rates=(0.5, 1.0, 2.0),
        )
        assert rate in (0.5, 1.0, 2.0)

    def test_campaign_report_round_trips(self):
        report = run_overload(cases=2, seed=0, epochs=8, multiplier=2.0,
                              stall_epochs=1)
        assert report.ok, report.violations
        assert report.breaches == 2  # one forced stall per case
        assert len(report.rates) == 2
        for row in report.rates:
            assert row["offered"] == pytest.approx(2.0 * row["sustainable"])
        doc = report.to_dict()
        assert doc["cases"] == 2
        assert doc["breaches"] == 2
        rendered = report.render()
        assert "sustainable" in rendered
        assert "p99" in rendered

    def test_injected_fault_is_caught_and_breach_fires(self):
        report = run_overload(cases=1, seed=0, epochs=8, inject_fault=True)
        assert not report.ok  # the perturbed allocation must be caught
        assert report.breaches > 0  # and the forced stalls must bite
        assert any(v.check.startswith("overload.")
                   for v in report.violations)
        assert report.violations[0].arrival_trace["epochs"] > 0
