"""End-to-end tracing, event streaming, and SLO reporting.

Covers the observability tentpole: hierarchical span tracing with
deterministic ids and a zero-cost disabled path, the bounded JSONL event
bus (no torn lines under ParallelSweep, explicit drop counters), the
Prometheus exporter, the SLO section of schema-v2 artifacts, the
weighted-percentile rule (property-tested against the exact sorted-sample
reference), full span coverage of the epoch pipeline, and the
instrumentation-off bitwise-identity guarantee.
"""

import json
import random
import statistics

import pytest

from repro import obs
from repro.obs import (
    EventBus,
    MetricsRegistry,
    NullSpan,
    RunArtifact,
    SpanTracer,
    render_prometheus,
    using_event_bus,
    using_registry,
    using_tracer,
    validate_prometheus_text,
    weighted_percentile,
)
from repro.obs.events import emit_event
from repro.obs.slo import (
    bench_trend_rows,
    perf_reference_rows,
    render_slo,
    slo_report,
    validate_slo,
)
from repro.obs.trace import span
from repro.perf.parallel import ParallelSweep
from repro.resilience import AllocatorRuntime, ChurnEvent
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.scenarios import fig1, fig6


@pytest.fixture(autouse=True)
def _clean_globals():
    prev_reg = obs.get_registry()
    prev_tracer = obs.get_tracer()
    prev_bus = obs.get_event_bus()
    obs.set_registry(None)
    obs.set_tracer(None)
    obs.set_event_bus(None)
    yield
    obs.set_registry(prev_reg)
    obs.set_tracer(prev_tracer)
    obs.set_event_bus(prev_bus)


# ----------------------------------------------------------------------
# Span tracer
# ----------------------------------------------------------------------

class TestSpanTracer:
    def test_hierarchy_and_deterministic_ids(self):
        with using_tracer() as tracer:
            with span("outer", k=1) as outer:
                with span("inner") as inner:
                    inner.tag(deep=True)
            with span("second"):
                pass
        records = tracer.to_records()
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["span"] == "s1"
        assert by_name["inner"]["span"] == "s2"
        assert by_name["second"]["span"] == "s3"
        assert by_name["inner"]["parent"] == "s1"
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["tags"] == {"deep": True}
        assert by_name["outer"]["tags"] == {"k": 1}
        assert all(r["record"] == "span" for r in records)
        assert all(r["duration_s"] >= 0.0 for r in records)

    def test_disabled_is_null_span(self):
        s = span("anything")
        assert isinstance(s, NullSpan)
        with s as inner:
            inner.tag(ignored=1)  # must be a silent no-op
        assert obs.current_span_id() is None

    def test_exception_tags_error_and_closes(self):
        with using_tracer() as tracer:
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        (record,) = tracer.to_records()
        assert record["tags"]["error"] == "RuntimeError"
        assert tracer.stats()["open"] == 0

    def test_bounded_with_drop_counter(self):
        tracer = SpanTracer(max_spans=2)
        with using_tracer(tracer):
            for _ in range(5):
                with span("tick"):
                    pass
        stats = tracer.stats()
        assert len(tracer.to_records()) == 2
        assert stats["dropped"] == 3
        assert stats["opened"] == 5


# ----------------------------------------------------------------------
# Weighted percentile (satellite: documented rule + property tests)
# ----------------------------------------------------------------------

class TestWeightedPercentile:
    def test_documented_examples(self):
        assert weighted_percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert weighted_percentile([1.0], 37) == 1.0
        assert weighted_percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_matches_exact_inclusive_quantiles(self):
        # statistics.quantiles(method="inclusive") is the exact
        # sorted-sample (Hyndman–Fan type 7) reference.
        rng = random.Random(20260808)
        for trial in range(20):
            n = rng.randint(2, 60)
            data = [rng.uniform(-50, 50) for _ in range(n)]
            ordered = sorted(data)
            cuts = statistics.quantiles(data, n=10, method="inclusive")
            for k, reference in enumerate(cuts, start=1):
                got = weighted_percentile(ordered, 100.0 * k / 10)
                assert got == pytest.approx(reference), (trial, k)

    def test_monotone_and_bounded(self):
        rng = random.Random(7)
        data = sorted(rng.gauss(0, 3) for _ in range(41))
        previous = float("-inf")
        for p in range(0, 101, 5):
            value = weighted_percentile(data, float(p))
            assert data[0] <= value <= data[-1]
            assert value >= previous
            previous = value
        assert weighted_percentile(data, 0) == data[0]
        assert weighted_percentile(data, 100) == data[-1]


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------

class TestEventBus:
    def test_bounded_pending_with_drop_counters(self):
        with using_registry() as reg:
            with using_event_bus(EventBus(max_pending=2)) as bus:
                for i in range(5):
                    emit_event("tick", i=i)
        stats = bus.stats()
        assert stats == {"emitted": 5, "pending": 2, "dropped": 3,
                         "written": 0}
        assert reg.counters["obs.events.dropped"].value == 3

    def test_streaming_survives_memory_bound(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with using_event_bus(EventBus(path=path, max_pending=1)) as bus:
            for i in range(4):
                emit_event("tick", i=i)
        lines = path.read_text().splitlines()
        # The memory bound drops pending entries, never stream lines.
        assert len(lines) == 4
        assert bus.stats()["dropped"] == 3
        for seq, line in enumerate(lines, start=1):
            event = json.loads(line)
            assert event["record"] == "event"
            assert event["seq"] == seq
            assert event["source"] == "main"

    def test_absorb_keeps_foreign_seq_and_source(self):
        worker = EventBus(source="task3")
        worker.emit("done", x=1)
        parent = EventBus()
        parent.emit("local")
        assert parent.absorb(worker.drain()) == 1
        assert [(e["source"], e["seq"]) for e in parent.pending] == [
            ("main", 1), ("task3", 1)
        ]


# ----------------------------------------------------------------------
# Event integrity under ParallelSweep
# ----------------------------------------------------------------------

def _emitting_task(x):
    emit_event("task.tick", value=x)
    emit_event("task.done", value=x * 2)
    return x * x


def _event_key(event):
    return (event["source"], event["seq"], event["kind"], event["value"])


class TestParallelEventIntegrity:
    def test_no_torn_lines_and_deterministic_merge(self, tmp_path):
        items = list(range(12))
        path = tmp_path / "sweep.jsonl"
        with using_registry():
            with using_event_bus(EventBus(path=path)) as bus:
                out = ParallelSweep(4).map(_emitting_task, items)
        assert out == [x * x for x in items]

        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]  # every line parses
        assert len(events) == 2 * len(items)
        # Merge order is task-submission order, not completion order.
        expected = []
        for i in items:
            expected.append((f"task{i}", 1, "task.tick", i))
            expected.append((f"task{i}", 2, "task.done", 2 * i))
        assert [_event_key(e) for e in events] == expected
        assert [_event_key(e) for e in bus.pending] == expected

    def test_serial_jobs1_merges_identically(self, tmp_path):
        items = list(range(6))
        with using_registry():
            with using_event_bus(EventBus()) as serial_bus:
                ParallelSweep(1).map(_emitting_task, items)
            with using_event_bus(EventBus()) as pooled_bus:
                ParallelSweep(3).map(_emitting_task, items)
        assert ([_event_key(e) for e in serial_bus.pending]
                == [_event_key(e) for e in pooled_bus.pending])

    def test_drop_counters_reach_artifact(self):
        items = list(range(8))
        with using_registry() as reg:
            with using_event_bus(EventBus(max_pending=3)) as bus:
                ParallelSweep(2).map(_emitting_task, items)
            artifact = RunArtifact(kind="sweep")
            artifact.attach_registry(reg)
            artifact.attach_slo(reg, event_stats=bus.stats())
        assert bus.stats()["dropped"] == 2 * len(items) - 3
        assert artifact.slo["events"]["dropped"] == bus.stats()["dropped"]
        doc = artifact.to_json_dict()  # schema v2 validates the slo key
        assert doc["slo"]["events"]["pending"] == 3


# ----------------------------------------------------------------------
# Pipeline span coverage
# ----------------------------------------------------------------------

PHASES = ("apply", "diff", "suspend", "admit", "solve", "dampen",
          "validate", "commit")


class TestPipelineSpanCoverage:
    def test_every_phase_and_solver_emits_spans(self):
        with using_registry() as reg:
            with using_tracer() as tracer:
                with using_event_bus() as bus:
                    runtime = AllocatorRuntime(fig1.make_scenario())
                    runtime.advance([
                        ChurnEvent(0, "flow-up", flow="1"),
                        ChurnEvent(0, "flow-up", flow="2"),
                    ])
                    runtime.advance([
                        ChurnEvent(1, "link-down", link=("B", "C"))
                    ])
                    runtime.advance([])
        names = {r["name"] for r in tracer.to_records()}
        for phase in PHASES:
            assert f"runtime.phase.{phase}" in names, phase
        assert "runtime.epoch" in names
        assert "lp.solve" in names
        assert "lp.maxmin" in names
        # One latency sample and one commit event per committed epoch.
        hist = reg.histograms["runtime.epoch.latency_ms"]
        assert len(hist.values) == 3
        commits = [e for e in bus.pending if e["kind"] == "epoch.commit"]
        assert [e["epoch"] for e in commits] == [0, 1, 2]
        # Admission queue gauges are refreshed every epoch.
        assert "admission.queue.depth" in reg.gauges
        assert "admission.queue.age_max" in reg.gauges

    def test_epoch_spans_nest_phases(self):
        with using_tracer() as tracer:
            runtime = AllocatorRuntime(fig1.make_scenario())
            runtime.advance([ChurnEvent(0, "flow-up", flow="1")])
        records = tracer.to_records()
        epoch = next(r for r in records if r["name"] == "runtime.epoch")
        phases = [r for r in records
                  if r["name"].startswith("runtime.phase.")]
        assert phases and all(r["parent"] == epoch["span"]
                              for r in phases)

    def test_distributed_protocol_emits_spans(self):
        from repro.core import DistributedAllocator

        with using_tracer() as tracer:
            DistributedAllocator(fig6.make_scenario()).run()
        names = {r["name"] for r in tracer.to_records()}
        assert {"2pad.run", "2pad.build_views", "2pad.propagate",
                "2pad.flow", "2pad.local_lp"} <= names

    def test_checkpoint_spans_and_events(self, tmp_path):
        path = tmp_path / "ck.json"
        with using_registry():
            with using_tracer() as tracer:
                with using_event_bus() as bus:
                    digest = save_checkpoint({"epoch": 3}, path)
                    assert load_checkpoint(path) == {"epoch": 3}
        names = [r["name"] for r in tracer.to_records()]
        assert names == ["checkpoint.save", "checkpoint.restore"]
        kinds = [e["kind"] for e in bus.pending]
        assert kinds == ["checkpoint.save", "checkpoint.restore"]
        assert bus.pending[0]["sha256"] == digest[:12]


# ----------------------------------------------------------------------
# Warm-start fallback attribution (satellite: span-tagged counters)
# ----------------------------------------------------------------------

class TestWarmFallbackAttribution:
    @staticmethod
    def _lp():
        from repro.lp import LinearProgram

        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.add_constraint({"x": 1.0}, 4.0)
        return lp

    def test_stale_basis_event_names_triggering_span(self):
        from repro.lp.simplex import solve_simplex

        stale = (("s", 0), ("s", 1))  # wrong row count for a 1-row LP
        with using_registry() as reg:
            with using_tracer() as tracer:
                with using_event_bus() as bus:
                    solution = solve_simplex(self._lp(), start_basis=stale)
        assert solution.is_optimal
        assert reg.counters["lp.warm.stale_basis"].value == 1
        solve = next(r for r in tracer.to_records()
                     if r["name"] == "lp.solve")
        assert solve["tags"]["warm"] is True
        assert "stale_basis" in solve["tags"]
        (event,) = [e for e in bus.pending
                    if e["kind"] == "lp.warm.stale_basis"]
        assert event["span"] == solve["span"]
        assert event["reason"] == solve["tags"]["stale_basis"]

    def test_clean_warm_start_emits_no_fallback_event(self):
        from repro.lp.simplex import solve_simplex

        first = solve_simplex(self._lp())
        with using_registry() as reg:
            with using_event_bus() as bus:
                solve_simplex(self._lp(), start_basis=first.basis)
        assert "lp.warm.stale_basis" not in reg.counters
        assert not [e for e in bus.pending
                    if e["kind"] == "lp.warm.stale_basis"]


# ----------------------------------------------------------------------
# Exporter + SLO report
# ----------------------------------------------------------------------

def _loaded_registry():
    reg = MetricsRegistry()
    for v in (1.0, 2.0, 3.0, 10.0):
        reg.histogram("runtime.epoch.latency_ms").observe(v)
    reg.counter("checkpoint.save").inc(4)
    reg.gauge("admission.queue.depth").set(2)
    return reg


class TestExportAndSlo:
    def test_prometheus_round_trip(self):
        text = render_prometheus(_loaded_registry())
        assert validate_prometheus_text(text) > 0
        assert "repro_checkpoint_save_total 4.0" in text
        assert 'quantile="0.95"' in text

    def test_slo_report_validates_and_renders(self):
        reg = _loaded_registry()
        with reg.timer("runtime.phase.solve"):
            pass
        with reg.timer("lp.solve"):
            pass
        report = slo_report(reg, trace_stats={"opened": 9, "dropped": 0})
        validate_slo(report)
        latency = report["epoch_latency_ms"]
        assert latency["count"] == 4
        assert latency["p50"] == pytest.approx(2.5)
        assert [r["phase"] for r in report["phase_attribution"]] == [
            "solve"
        ]
        assert {r["component"] for r in report["component_attribution"]
                } == {"lp"}
        rendered = render_slo(report)
        assert "epoch latency (ms)" in rendered
        assert "phase attribution" in rendered
        with pytest.raises(ValueError):
            validate_slo({"schema": "bogus"})

    def test_bench_trend_and_perf_reference_rows(self):
        timers = {"lp.solve": {"mean_ms": 2.0},
                  "unshared.timer": {"mean_ms": 1.0}}
        bench_obs = {"points": [
            {"nodes": 10, "timers": {"lp.solve": {"mean_ms": 4.0}}},
            {"nodes": 40, "timers": {"lp.solve": {"mean_ms": 1.0}}},
        ]}
        (row,) = bench_trend_rows(timers, bench_obs)
        assert row["timer"] == "lp.solve"
        assert row["baseline_mean_ms"] == 1.0  # largest point wins
        assert row["delta"] == pytest.approx(1.0)
        bench_perf = {"sections": {"dynamic": {"points": [
            {"nodes": 60, "flows": 16, "seed": 3, "fast_ms": 170.0,
             "events": 17, "speedup": 2.4},
        ]}}}
        (ref,) = perf_reference_rows(bench_perf)
        assert ref["fast_ms_per_event"] == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Instrumentation-off bitwise identity
# ----------------------------------------------------------------------

def _run_timeline(scenario_maker):
    runtime = AllocatorRuntime(scenario_maker())
    flows = sorted(runtime.scenario.flow_ids)
    shares = []
    runtime.advance([ChurnEvent(0, "flow-up", flow=f) for f in flows])
    record = runtime.advance([ChurnEvent(1, "flow-down", flow=flows[0])])
    shares.append(dict(record.shares))
    record = runtime.advance([ChurnEvent(2, "flow-up", flow=flows[0])])
    shares.append(dict(record.shares))
    return shares


class TestDisabledOverheadIsZero:
    @pytest.mark.parametrize("maker", [fig1.make_scenario,
                                       fig6.make_scenario])
    def test_instrumented_run_is_bitwise_identical(self, maker):
        plain = _run_timeline(maker)
        with using_registry():
            with using_tracer():
                with using_event_bus():
                    observed = _run_timeline(maker)
        # Exact float equality: observation must never perturb the
        # allocation pipeline.
        assert plain == observed
