"""Tests for weighted-flow experiments and the ASCII visualization."""

import pytest

from repro.core import ContentionAnalysis
from repro.experiments import (
    make_weighted_local_scenario,
    render_allocation_comparison,
    render_bars,
    render_contention_matrix,
    render_topology,
    weighted_fig1,
    weighted_local_channel,
)
from repro.scenarios import fig1


class TestWeightedLocalChannel:
    @pytest.fixture(scope="class")
    def result(self):
        return weighted_local_channel(duration=5.0, seed=1)

    def test_allocation_proportional_to_weights(self, result):
        assert result.allocated["1"] == pytest.approx(1 / 6)
        assert result.allocated["2"] == pytest.approx(1 / 3)
        assert result.allocated["3"] == pytest.approx(1 / 2)

    def test_measured_tracks_weights(self, result):
        assert result.measured_ratio("2", "1") == pytest.approx(
            2.0, rel=0.15
        )
        assert result.measured_ratio("3", "1") == pytest.approx(
            3.0, rel=0.15
        )

    def test_adherence_index_near_one(self, result):
        assert result.adherence_index > 0.99

    def test_scenario_shape(self):
        scenario = make_weighted_local_scenario((1.0, 1.0))
        assert len(scenario.flows) == 2
        analysis = ContentionAnalysis(scenario)
        # Everything in one neighborhood: a single 2-clique.
        assert len(analysis.cliques) == 1


class TestWeightedFig1:
    def test_weighted_lp_unchanged_but_bounds_differ(self):
        """With w = (2, 1) on Fig. 1 the LP optimum stays (B/2, B/4):
        the clique structure binds before the weighted basic shares do."""
        result = weighted_fig1(w1=2.0, w2=1.0, duration=2.0, seed=1)
        assert result.allocated["1"] == pytest.approx(0.5)
        assert result.allocated["2"] == pytest.approx(0.25)

    def test_inverted_weights_shift_allocation(self):
        """w = (1, 4): flow 2's basic share rises to 4B/10 = 2B/5, and
        the clique r̂1 + 2 r̂2 <= B squeezes flow 1 down to B/5."""
        result = weighted_fig1(w1=1.0, w2=4.0, duration=2.0, seed=1)
        assert result.allocated["2"] == pytest.approx(0.4, abs=1e-6)
        assert result.allocated["1"] == pytest.approx(0.2, abs=1e-6)


class TestVisualization:
    def test_topology_renders_all_nodes_and_flows(self):
        scenario = fig1.make_scenario()
        art = render_topology(scenario, width=60, height=10)
        for node in scenario.network.nodes:
            assert node in art
        assert "F1[A->B->C]" in art

    def test_contention_matrix(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        art = render_contention_matrix(analysis)
        assert "F1.1" in art
        assert "X" in art and "." in art
        assert "clique 0" in art

    def test_bars(self):
        art = render_bars({"1": 0.5, "2": 0.25}, title="alloc",
                          reference={"1": 0.5})
        assert "alloc" in art
        assert "#" in art
        assert "ref 0.5" in art

    def test_bars_empty(self):
        assert "(empty)" in render_bars({}, title="t")

    def test_allocation_comparison(self):
        art = render_allocation_comparison(
            {"basic": {"1": 0.25, "2": 0.25},
             "lp": {"1": 0.5, "2": 0.25}},
            ["1", "2"],
        )
        assert "basic" in art and "lp" in art and "total" in art
        assert "0.7500" in art  # lp total
