"""Tests for the LP problem IR and the from-scratch simplex solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (
    LinearProgram,
    cross_check,
    lexicographic_maxmin,
    solve,
    solve_scipy,
    solve_simplex,
)


def make_lp(objective, constraints, lower_bounds=None):
    lp = LinearProgram()
    lp.maximize(objective)
    for coeffs, bound in constraints:
        lp.add_constraint(coeffs, bound)
    for var, bound in (lower_bounds or {}).items():
        lp.set_lower_bound(var, bound)
    return lp


class TestProblemIR:
    def test_variable_order_is_registration_order(self):
        lp = LinearProgram()
        lp.maximize({"b": 1.0})
        lp.add_constraint({"a": 1.0, "b": 1.0}, 4.0)
        assert lp.variables == ["b", "a"]

    def test_feasibility_check(self):
        lp = make_lp({"x": 1.0}, [({"x": 1.0}, 2.0)], {"x": 0.5})
        assert lp.is_feasible({"x": 1.0})
        assert not lp.is_feasible({"x": 3.0})
        assert not lp.is_feasible({"x": 0.1})

    def test_objective_value(self):
        lp = make_lp({"x": 2.0, "y": 1.0}, [])
        assert lp.objective_value({"x": 1.0, "y": 3.0}) == 5.0

    def test_dense_form(self):
        lp = make_lp({"x": 1.0}, [({"x": 2.0, "y": 1.0}, 3.0)], {"y": 1.0})
        c, a, b, lb = lp.to_dense()
        assert c.tolist() == [1.0, 0.0]
        assert a.tolist() == [[2.0, 1.0]]
        assert b.tolist() == [3.0]
        assert lb.tolist() == [0.0, 1.0]

    def test_constraint_tightness(self):
        lp = make_lp({"x": 1.0}, [({"x": 1.0}, 2.0)])
        sol = solve(lp)
        assert lp.constraints[0].is_tight(sol.values)

    def test_pretty_renders(self):
        lp = make_lp({"x": 1.0}, [({"x": 2.0}, 1.0)], {"x": 0.25})
        text = lp.pretty()
        assert "maximize" in text and "2*x <= 1" in text
        assert "x >= 0.25" in text


class TestSimplexBasics:
    def test_simple_bounded(self):
        lp = make_lp({"x": 1.0}, [({"x": 1.0}, 5.0)])
        sol = solve_simplex(lp)
        assert sol.is_optimal
        assert sol["x"] == pytest.approx(5.0)

    def test_two_variables(self):
        # max x + y s.t. x + 2y <= 4, 3x + y <= 6
        lp = make_lp({"x": 1.0, "y": 1.0},
                     [({"x": 1.0, "y": 2.0}, 4.0),
                      ({"x": 3.0, "y": 1.0}, 6.0)])
        sol = solve_simplex(lp)
        assert sol.objective == pytest.approx(2.8)
        assert sol["x"] == pytest.approx(1.6)
        assert sol["y"] == pytest.approx(1.2)

    def test_lower_bounds_shift(self):
        lp = make_lp({"x": 1.0, "y": 1.0},
                     [({"x": 1.0, "y": 1.0}, 3.0)],
                     {"x": 1.0, "y": 0.5})
        sol = solve_simplex(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.0)
        assert sol["x"] >= 1.0 - 1e-9
        assert sol["y"] >= 0.5 - 1e-9

    def test_infeasible_lower_bounds(self):
        lp = make_lp({"x": 1.0, "y": 1.0},
                     [({"x": 1.0, "y": 1.0}, 1.0)],
                     {"x": 0.8, "y": 0.8})
        sol = solve_simplex(lp)
        assert sol.status == "infeasible"

    def test_unbounded(self):
        lp = make_lp({"x": 1.0}, [({"y": 1.0}, 1.0)])
        sol = solve_simplex(lp)
        assert sol.status == "unbounded"

    def test_empty_lp(self):
        sol = solve_simplex(LinearProgram())
        assert sol.is_optimal
        assert sol.objective == 0.0

    def test_no_constraints_zero_objective(self):
        lp = LinearProgram()
        lp.add_variable("x", objective_coeff=0.0)
        sol = solve_simplex(lp)
        assert sol.is_optimal

    def test_paper_fig1_lp(self):
        lp = make_lp({"r1": 1.0, "r2": 1.0},
                     [({"r1": 2.0}, 1.0), ({"r1": 1.0, "r2": 2.0}, 1.0)],
                     {"r1": 0.25, "r2": 0.25})
        sol = solve_simplex(lp)
        assert sol["r1"] == pytest.approx(0.5)
        assert sol["r2"] == pytest.approx(0.25)

    def test_paper_fig6_lp_objective(self):
        lp = make_lp(
            {f"r{i}": 1.0 for i in range(1, 6)},
            [({"r1": 3.0}, 1.0),
             ({"r1": 2.0, "r2": 1.0}, 1.0),
             ({"r2": 1.0, "r3": 1.0}, 1.0),
             ({"r3": 1.0, "r4": 1.0}, 1.0),
             ({"r4": 2.0, "r5": 1.0}, 1.0)],
            {f"r{i}": 0.125 for i in range(1, 6)},
        )
        sol = solve_simplex(lp)
        assert sol.objective == pytest.approx(1 / 3 + 1 / 3 + 2 / 3
                                              + 1 / 8 + 3 / 4)

    def test_degenerate_constraints(self):
        # Redundant constraint should not break phase 1/2.
        lp = make_lp({"x": 1.0},
                     [({"x": 1.0}, 2.0), ({"x": 2.0}, 4.0)])
        sol = solve_simplex(lp)
        assert sol["x"] == pytest.approx(2.0)


class TestScipyBackend:
    def test_agrees_on_simple_lp(self):
        lp = make_lp({"x": 1.0, "y": 2.0},
                     [({"x": 1.0, "y": 1.0}, 10.0)])
        ours = solve_simplex(lp)
        theirs = solve_scipy(lp)
        assert ours.objective == pytest.approx(theirs.objective)

    def test_cross_check_passes(self):
        lp = make_lp({"x": 1.0}, [({"x": 3.0}, 2.0)], {"x": 0.1})
        sol = cross_check(lp)
        assert sol.is_optimal

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            solve(LinearProgram(), backend="nope")


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 5),
    m=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_simplex_matches_scipy_on_random_allocation_lps(n, m, seed):
    """Property: our simplex and HiGHS agree on clique-style LPs.

    The generated LPs mirror the paper's structure: non-negative
    coefficients, positive capacities, small lower bounds — always
    feasible and bounded.
    """
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    names = [f"r{i}" for i in range(n)]
    lp.maximize({v: 1.0 for v in names})
    for _ in range(m):
        support = rng.random(n) < 0.7
        if not support.any():
            support[rng.integers(n)] = True
        coeffs = {
            names[i]: float(rng.integers(1, 4))
            for i in range(n) if support[i]
        }
        lp.add_constraint(coeffs, float(rng.uniform(1.0, 3.0)))
    for v in names:
        lp.set_lower_bound(v, float(rng.uniform(0.0, 0.05)))
    ours = solve_simplex(lp)
    theirs = solve_scipy(lp)
    assert ours.status == theirs.status
    if ours.is_optimal:
        assert ours.objective == pytest.approx(theirs.objective, abs=1e-6)
        assert lp.is_feasible(ours.values, tol=1e-6)


class TestLexicographicMaxmin:
    def test_two_tier_split_example(self):
        """Reproduces the (3B/8, 3B/8) split of Sec. III."""
        lp = make_lp(
            {"r11": 1.0, "r12": 1.0, "r21": 1.0, "r22": 1.0},
            [({"r11": 1.0, "r12": 1.0}, 1.0),
             ({"r12": 1.0, "r21": 1.0, "r22": 1.0}, 1.0)],
            {v: 0.25 for v in ("r11", "r12", "r21", "r22")},
        )
        sol = lexicographic_maxmin(lp, fix_objective=True)
        assert sol.objective == pytest.approx(1.75, abs=1e-6)
        assert sol["r11"] == pytest.approx(0.75, abs=1e-5)
        assert sol["r12"] == pytest.approx(0.25, abs=1e-5)
        assert sol["r21"] == pytest.approx(0.375, abs=1e-5)
        assert sol["r22"] == pytest.approx(0.375, abs=1e-5)

    def test_pure_maxmin_without_objective_pin(self):
        lp = make_lp({"x": 1.0, "y": 1.0},
                     [({"x": 1.0, "y": 1.0}, 1.0)])
        sol = lexicographic_maxmin(lp, fix_objective=False)
        assert sol["x"] == pytest.approx(0.5, abs=1e-5)
        assert sol["y"] == pytest.approx(0.5, abs=1e-5)

    def test_weighted_maxmin(self):
        lp = make_lp({"x": 1.0, "y": 1.0},
                     [({"x": 1.0, "y": 1.0}, 3.0)])
        sol = lexicographic_maxmin(lp, weights={"x": 2.0, "y": 1.0},
                                   fix_objective=False)
        assert sol["x"] == pytest.approx(2.0, abs=1e-4)
        assert sol["y"] == pytest.approx(1.0, abs=1e-4)

    def test_infeasible_passthrough(self):
        lp = make_lp({"x": 1.0}, [({"x": 1.0}, 0.5)], {"x": 1.0})
        sol = lexicographic_maxmin(lp)
        assert sol.status == "infeasible"

    def test_rejects_nonpositive_weight(self):
        lp = make_lp({"x": 1.0}, [({"x": 1.0}, 1.0)])
        with pytest.raises(ValueError):
            lexicographic_maxmin(lp, weights={"x": 0.0})
