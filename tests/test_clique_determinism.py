"""Determinism of the clique layer: stable ordering, order-invariance,
and exhaustive agreement with the brute-force oracle on small graphs."""

import itertools
import random

from repro.graphs import Graph, maximal_cliques
from repro.verify import brute_force_maximal_cliques


def random_graph(n, p, rng):
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in itertools.combinations(range(n), 2):
        if rng.random() < p:
            g.add_edge(u, v)
    return g


def shuffled_copy(graph, rng):
    """Same graph, vertices and edges inserted in a random order."""
    vertices = list(graph.vertices())
    edges = [
        (u, v) for u in vertices for v in graph.neighbors(u) if repr(u) < repr(v)
    ]
    rng.shuffle(vertices)
    rng.shuffle(edges)
    out = Graph()
    for v in vertices:
        out.add_vertex(v)
    for u, v in edges:
        out.add_edge(u, v)
    return out


class TestStableOrdering:
    def test_repeated_runs_identical(self):
        rng = random.Random(0)
        g = random_graph(9, 0.5, rng)
        first = maximal_cliques(g)
        for _ in range(5):
            assert maximal_cliques(g) == first

    def test_insertion_order_invariant(self):
        rng = random.Random(1)
        for trial in range(20):
            g = random_graph(8, 0.4 + 0.02 * trial, rng)
            want = maximal_cliques(g)
            for _ in range(3):
                assert maximal_cliques(shuffled_copy(g, rng)) == want

    def test_ordering_key_largest_first_then_lexicographic(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        cliques = maximal_cliques(g)
        sizes = [len(c) for c in cliques]
        assert sizes == sorted(sizes, reverse=True)
        assert cliques[0] == frozenset({0, 1, 2})


class TestBruteForceEquality:
    def test_exhaustive_all_graphs_up_to_4(self):
        pairs = list(itertools.combinations(range(4), 2))
        for bits in range(2 ** len(pairs)):
            g = Graph()
            for v in range(4):
                g.add_vertex(v)
            for i, (u, v) in enumerate(pairs):
                if bits >> i & 1:
                    g.add_edge(u, v)
            assert maximal_cliques(g) == brute_force_maximal_cliques(g)

    def test_random_graphs_up_to_8(self):
        rng = random.Random(2)
        for trial in range(60):
            n = rng.randint(1, 8)
            g = random_graph(n, rng.uniform(0.1, 0.9), rng)
            assert maximal_cliques(g) == brute_force_maximal_cliques(g), (
                trial, sorted(map(repr, g.vertices()))
            )

    def test_complete_graph(self):
        g = Graph()
        for u, v in itertools.combinations(range(6), 2):
            g.add_edge(u, v)
        assert maximal_cliques(g) == [frozenset(range(6))]
        assert brute_force_maximal_cliques(g) == [frozenset(range(6))]

    def test_string_vertices(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert maximal_cliques(g) == brute_force_maximal_cliques(g) == [
            frozenset({"a", "b"}), frozenset({"b", "c"}),
        ]
