"""Tests for RNG streams and the tracer."""

import pytest

from repro.sim import RngRegistry, Tracer
from repro.sim.rng import _stable_hash


class TestRngRegistry:
    def test_same_seed_same_draws(self):
        a = RngRegistry(42).stream("node-a").random(5)
        b = RngRegistry(42).stream("node-a").random(5)
        assert (a == b).all()

    def test_streams_are_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not (a == b).all()

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(7)
        r1.stream("x")
        draws1 = r1.stream("y").random(3)
        r2 = RngRegistry(7)
        draws2 = r2.stream("y").random(3)
        assert (draws1 == draws2).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("a").random(5)
        b = RngRegistry(2).stream("a").random(5)
        assert not (a == b).all()

    def test_uniform_slots_range(self):
        reg = RngRegistry(3)
        draws = [reg.uniform_slots("n", 31) for _ in range(500)]
        assert min(draws) >= 0
        assert max(draws) <= 31
        assert max(draws) > 20  # actually spans the window

    def test_uniform_slots_zero_window(self):
        reg = RngRegistry(3)
        assert reg.uniform_slots("n", 0) == 0
        assert reg.uniform_slots("n", 0.9) == 0

    def test_tuple_stream_names(self):
        reg = RngRegistry(5)
        s = reg.stream(("backoff", "A"))
        assert s is reg.stream(("backoff", "A"))

    def test_stable_hash_is_stable(self):
        assert _stable_hash("abc") == _stable_hash("abc")
        assert _stable_hash("abc") != _stable_hash("abd")


class TestTracer:
    def test_disabled_by_default(self):
        tr = Tracer()
        tr.log(1.0, "mac", "hello")
        assert tr.records == []

    def test_enabled_category_records(self):
        tr = Tracer(["mac"])
        tr.log(1.0, "mac", "rts", node="A")
        tr.log(2.0, "chan", "ignored")
        assert len(tr.records) == 1
        rec = tr.records[0]
        assert rec.field("node") == "A"
        assert rec.field("missing", "d") == "d"

    def test_enable_disable(self):
        tr = Tracer()
        tr.enable("queue")
        assert tr.active("queue")
        tr.disable("queue")
        assert not tr.active("queue")

    def test_filter_and_count(self):
        tr = Tracer(["mac"])
        tr.log(1.0, "mac", "rts")
        tr.log(2.0, "mac", "rts")
        tr.log(3.0, "mac", "ack")
        assert len(tr.filter("mac")) == 3
        assert tr.count("mac", "rts") == 2

    def test_clear(self):
        tr = Tracer(["mac"])
        tr.log(1.0, "mac", "x")
        tr.clear()
        assert tr.records == []

    def test_str_rendering(self):
        tr = Tracer(["mac"])
        tr.log(1.5, "mac", "rts", node="A")
        assert "rts" in str(tr.records[0])
        assert "node=A" in str(tr.records[0])
