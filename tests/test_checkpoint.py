"""Checkpoint store and crash/restore differentials.

Two layers under test:

* :mod:`repro.resilience.checkpoint` — the envelope itself: atomic
  save, checksum verification, schema versioning, typed failures.
* :meth:`AllocatorRuntime.save` / :meth:`AllocatorRuntime.restore` —
  the acceptance property: a runtime crashed at *any* epoch boundary or
  mid-epoch, restored from its last checkpoint and resumed, finishes in
  a state **bitwise identical** (canonical-JSON equal, caches included)
  to an uninterrupted run over the same timeline.
"""

import json

import pytest

from repro import obs
from repro.resilience import (
    AllocatorRuntime,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointSchemaError,
    ChurnTimeline,
    RuntimeConfig,
    SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.checkpoint import CHECKPOINT_KIND
from repro.scenarios import fig1, fig4, fig6, grid_scenario
from repro.sim.rng import RngRegistry


@pytest.fixture(autouse=True)
def _no_active_registry():
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


PAYLOAD = {"epoch": 3, "shares": {"1": 0.5, "2": 0.25}, "active": ["1"]}


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        digest = save_checkpoint(PAYLOAD, path)
        assert len(digest) == 64  # sha256 hex
        assert load_checkpoint(path) == PAYLOAD

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "never-written.json")

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(PAYLOAD, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(PAYLOAD, path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["shares"]["1"] = 0.9  # hand edit, stale sha
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_checkpoint(path)

    def test_wrong_kind_is_corrupt(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(PAYLOAD, path)
        envelope = json.loads(path.read_text())
        envelope["kind"] = "something/else"
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointCorruptError, match="kind"):
            load_checkpoint(path)

    def test_unknown_schema_is_typed_separately(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(PAYLOAD, path)
        envelope = json.loads(path.read_text())
        envelope["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointSchemaError):
            load_checkpoint(path)
        # ...but still a CheckpointError, so callers can catch broadly.
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_non_object_envelope_is_corrupt(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)
        path.write_text(json.dumps({
            "kind": CHECKPOINT_KIND, "schema": SCHEMA_VERSION,
            "sha256": "0" * 64, "payload": "not a dict",
        }))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_failed_save_leaves_old_checkpoint_intact(self, tmp_path):
        """Atomic replace: a save that dies mid-write never tears the
        previous snapshot."""
        path = tmp_path / "ckpt.json"
        save_checkpoint(PAYLOAD, path)
        with pytest.raises(TypeError):
            save_checkpoint({"bad": {1, 2, 3}}, path)  # sets aren't JSON
        assert load_checkpoint(path) == PAYLOAD
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


def _drawn_timeline(scenario, name, epochs=8):
    registry = RngRegistry(7)
    return ChurnTimeline.draw(
        registry.stream(("ckpt", name)),
        scenario.flow_ids,
        scenario.network.nodes,
        scenario.network.links(),
        epochs=epochs,
    )


def _canonical(runtime):
    return json.dumps(runtime.state_payload(), sort_keys=True)


class _SimulatedCrash(BaseException):
    """Out of the Exception hierarchy so nothing accidentally eats it."""


#: (scenario factory, mode, loss) — covers the centralized LP path, the
#: lossy distributed 2PA-D path, and a larger centralized topology.
CRASH_MATRIX = [
    ("fig1", fig1.make_scenario, "centralized", 0.0),
    ("fig4", fig4.make_scenario, "distributed", 0.2),
    ("fig6", fig6.make_scenario, "centralized", 0.0),
]


class TestCrashRestoreDifferential:
    @pytest.mark.parametrize(
        "name,factory,mode,loss",
        CRASH_MATRIX,
        ids=[row[0] for row in CRASH_MATRIX],
    )
    @pytest.mark.parametrize("point", ["staged", "pre-checkpoint"])
    def test_crash_then_restore_is_bitwise_identical(
        self, tmp_path, name, factory, mode, loss, point
    ):
        """Crash at epoch ``epochs // 2`` — either after the epoch is
        staged (boundary) or after the in-memory commit but before the
        checkpoint write (mid-commit) — then restore and resume; the
        final payload must equal the uninterrupted run's byte for byte.
        """
        scenario = factory()
        timeline = _drawn_timeline(scenario, name)

        def config(path):
            return RuntimeConfig(
                seed=3, mode=mode, loss=loss, hysteresis=0.3,
                checkpoint_path=path,
            )

        baseline = AllocatorRuntime(scenario, config(None))
        baseline.run_timeline(timeline)

        path = str(tmp_path / f"{name}.ckpt.json")
        victim = AllocatorRuntime(scenario, config(path))
        crash_at = timeline.epochs // 2

        def hook(where, epoch):
            if where == point and epoch == crash_at:
                raise _SimulatedCrash(f"{where}@{epoch}")

        victim.crash_hook = hook
        with pytest.raises(_SimulatedCrash):
            victim.run_timeline(timeline)

        restored = AllocatorRuntime.restore(path, scenario=scenario)
        # Whichever side of the commit the crash hit, the durable state
        # is the last *checkpointed* epoch.
        assert restored.epoch == crash_at - 1
        restored.run_timeline(timeline)
        assert _canonical(restored) == _canonical(baseline)

    def test_restore_without_scenario_rebuilds_it(self, tmp_path):
        scenario = fig1.make_scenario()
        path = str(tmp_path / "fig1.ckpt.json")
        runtime = AllocatorRuntime(
            scenario, RuntimeConfig(checkpoint_path=path)
        )
        runtime.set_active(["1", "2"])
        restored = AllocatorRuntime.restore(path)
        assert restored.scenario.name == scenario.name
        assert _canonical(restored) == _canonical(runtime)

    def test_restore_rejects_foreign_scenario(self, tmp_path):
        path = str(tmp_path / "fig1.ckpt.json")
        runtime = AllocatorRuntime(
            fig1.make_scenario(), RuntimeConfig(checkpoint_path=path)
        )
        runtime.set_active(["1"])
        with pytest.raises(CheckpointCorruptError, match="scenario"):
            AllocatorRuntime.restore(path, scenario=fig4.make_scenario())

    def test_warm_restore_keeps_shard_cache_bitwise_identical(
        self, tmp_path
    ):
        """The per-component shard memo rides the checkpoint: a restored
        runtime reuses every cached component (no dirty re-solves in the
        same interpreter) and replays to a payload byte-equal to the
        uninterrupted runtime's."""
        scenario = fig4.make_scenario()
        path = str(tmp_path / "fig4.ckpt.json")
        runtime = AllocatorRuntime(
            scenario, RuntimeConfig(checkpoint_path=path)
        )
        runtime.set_active(scenario.flow_ids)
        runtime.set_active(scenario.flow_ids[1:])
        dump = runtime._shard.dump_state()
        assert dump  # the solves populated the per-component memo

        restored = AllocatorRuntime.restore(path, scenario=scenario)
        assert restored._shard.dump_state() == dump
        again_restored = restored.set_active(scenario.flow_ids[1:])
        again_original = runtime.set_active(scenario.flow_ids[1:])
        assert again_restored == again_original
        assert restored._shard.last_stats["dirty"] == 0
        assert restored._shard.dump_state() == runtime._shard.dump_state()
        assert _canonical(restored) == _canonical(runtime)

    def test_monolithic_runtime_checkpoints_without_shard_cache(
        self, tmp_path
    ):
        path = str(tmp_path / "mono.ckpt.json")
        runtime = AllocatorRuntime(
            fig1.make_scenario(),
            RuntimeConfig(sharded=False, checkpoint_path=path),
        )
        runtime.set_active(["1", "2"])
        assert runtime.state_payload()["caches"]["shard"] is None
        restored = AllocatorRuntime.restore(path)
        assert restored._shard is None
        assert restored.config.sharded is False
        assert _canonical(restored) == _canonical(runtime)

    def test_restored_runtime_keeps_checkpointing_in_place(self, tmp_path):
        """A restored runtime inherits the checkpoint location it was
        restored from, so the crash/restore cycle can repeat."""
        scenario = grid_scenario()
        timeline = _drawn_timeline(scenario, "grid", epochs=6)
        path = tmp_path / "grid.ckpt.json"
        runtime = AllocatorRuntime(
            scenario, RuntimeConfig(checkpoint_path=str(path))
        )
        runtime.advance(timeline.epoch_events(0))
        first = load_checkpoint(path)
        restored = AllocatorRuntime.restore(str(path))
        assert restored.config.checkpoint_path == str(path)
        restored.run_timeline(timeline)
        assert load_checkpoint(path)["epoch"] == timeline.epochs - 1
        assert load_checkpoint(path) != first
