"""Tests for maximal-clique enumeration (cross-checked against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    Graph,
    cliques_containing,
    is_maximal_clique,
    max_weight_clique,
    maximal_cliques,
    to_networkx,
    weighted_clique_number,
    weighted_clique_size,
)


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    g = Graph()
    for i in range(n):
        g.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestMaximalCliques:
    def test_empty_graph(self):
        assert maximal_cliques(Graph()) == []

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex("a")
        assert maximal_cliques(g) == [frozenset({"a"})]

    def test_triangle_plus_pendant(self):
        g = Graph.from_edges(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        )
        cliques = set(maximal_cliques(g))
        assert cliques == {frozenset("abc"), frozenset("cd")}

    def test_path_cliques_are_edges(self):
        g = Graph.from_edges([(i, i + 1) for i in range(4)])
        cliques = maximal_cliques(g)
        assert all(len(c) == 2 for c in cliques)
        assert len(cliques) == 4

    def test_deterministic_order(self):
        g = random_graph(12, 0.5, seed=3)
        assert maximal_cliques(g) == maximal_cliques(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = random_graph(14, 0.45, seed)
        ours = {frozenset(c) for c in maximal_cliques(g)}
        theirs = {frozenset(c) for c in nx.find_cliques(to_networkx(g))}
        assert ours == theirs

    def test_every_result_is_maximal(self):
        g = random_graph(12, 0.5, seed=11)
        for clique in maximal_cliques(g):
            assert is_maximal_clique(g, clique)


class TestWeightedCliques:
    def test_weighted_clique_size(self):
        weights = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert weighted_clique_size(["a", "c"], weights) == 4.0

    def test_weighted_clique_number_triangle(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c"),
                              ("c", "d")])
        weights = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 5.0}
        assert weighted_clique_number(g, weights) == 6.0  # {c, d}

    def test_weighted_clique_number_empty(self):
        assert weighted_clique_number(Graph(), {}) == 0.0

    def test_max_weight_clique(self):
        g = Graph.from_edges([("a", "b"), ("c", "d")])
        weights = {"a": 1.0, "b": 1.0, "c": 4.0, "d": 1.0}
        clique, size = max_weight_clique(g, weights)
        assert clique == frozenset({"c", "d"})
        assert size == 5.0

    def test_max_weight_clique_empty_raises(self):
        with pytest.raises(ValueError):
            max_weight_clique(Graph(), {})


class TestHelpers:
    def test_cliques_containing(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        cliques = maximal_cliques(g)
        with_b = cliques_containing(cliques, "b")
        assert len(with_b) == 2
        assert cliques_containing(cliques, "zz") == []

    def test_is_maximal_clique_rejects_non_clique(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert not is_maximal_clique(g, ["a", "c"])

    def test_is_maximal_clique_rejects_extendable(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        assert not is_maximal_clique(g, ["a", "b"])
        assert is_maximal_clique(g, ["a", "b", "c"])
