"""Tests for basic shares and the fairness predicates (Sec. II)."""

import pytest

from repro.core import (
    Flow,
    basic_shares,
    basic_total_throughput,
    jain_index,
    naive_subflow_shares,
    satisfies_basic_fairness,
    satisfies_fairness_constraint,
    total_effective_throughput,
)
from repro.core.fairness_defs import end_to_end_throughput, fairness_violations


def chain_flow(fid, hops, weight=1.0):
    return Flow(fid, [f"{fid}n{i}" for i in range(hops + 1)], weight)


class TestBasicShares:
    def test_fig1_values(self):
        flows = [chain_flow("1", 2), chain_flow("2", 2)]
        assert basic_shares(flows) == {"1": 0.25, "2": 0.25}

    def test_virtual_length_capping(self):
        flows = [chain_flow("1", 6), chain_flow("2", 1)]
        shares = basic_shares(flows)
        # denom = 3 + 1
        assert shares == {"1": 0.25, "2": 0.25}

    def test_weights_scale_shares(self):
        flows = [chain_flow("1", 1, 2.0), chain_flow("2", 1, 1.0)]
        shares = basic_shares(flows)
        assert shares["1"] == pytest.approx(2.0 / 3.0)
        assert shares["2"] == pytest.approx(1.0 / 3.0)

    def test_capacity_scaling(self):
        flows = [chain_flow("1", 1)]
        assert basic_shares(flows, capacity=2e6)["1"] == pytest.approx(2e6)

    def test_total(self):
        flows = [chain_flow("1", 2), chain_flow("2", 2)]
        assert basic_total_throughput(flows) == pytest.approx(0.5)

    def test_naive_uses_true_hop_counts(self):
        flows = [chain_flow("1", 6), chain_flow("2", 1)]
        shares = naive_subflow_shares(flows)
        assert shares["1"] == pytest.approx(1.0 / 7.0)
        assert shares["1"] < basic_shares(flows)["1"]


class TestFairnessPredicates:
    def test_fairness_constraint(self):
        weights = {"1": 2.0, "2": 1.0}
        assert satisfies_fairness_constraint(
            {"1": 0.4, "2": 0.2}, weights
        )
        assert not satisfies_fairness_constraint(
            {"1": 0.4, "2": 0.3}, weights
        )

    def test_fairness_constraint_empty(self):
        assert satisfies_fairness_constraint({}, {})

    def test_basic_fairness(self):
        flows = [chain_flow("1", 2), chain_flow("2", 2)]
        assert satisfies_basic_fairness({"1": 0.5, "2": 0.25}, flows)
        assert not satisfies_basic_fairness({"1": 0.5, "2": 0.2}, flows)

    def test_violations_listed(self):
        flows = [chain_flow("1", 2), chain_flow("2", 2)]
        assert fairness_violations({"1": 0.1, "2": 0.3}, flows) == ["1"]


class TestThroughputDefs:
    def test_end_to_end_is_min(self):
        assert end_to_end_throughput({1: 0.5, 2: 0.25, 3: 0.4}) == 0.25

    def test_end_to_end_empty_raises(self):
        with pytest.raises(ValueError):
            end_to_end_throughput({})

    def test_total_effective(self):
        assert total_effective_throughput({"1": 0.5, "2": 0.25}) == 0.75


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([3, 3, 3]) == pytest.approx(1.0)

    def test_starved_flow(self):
        assert jain_index([1, 0, 0]) == pytest.approx(1.0 / 3.0)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
