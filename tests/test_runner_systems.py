"""Integration tests: full simulation runs of the three systems."""

import pytest

from repro.core import ContentionAnalysis
from repro.core.model import SubflowId
from repro.sched import (
    SimulationRun,
    TrafficConfig,
    build_2pa,
    build_80211,
    build_two_tier,
    subflow_shares_by_node,
)
from repro.scenarios import fig1, fig6


class TestSubflowSharesByNode:
    def test_grouping(self):
        scenario = fig1.make_scenario()
        shares = {
            SubflowId("1", 1): 0.5, SubflowId("1", 2): 0.5,
            SubflowId("2", 1): 0.25, SubflowId("2", 2): 0.25,
        }
        per_node = subflow_shares_by_node(scenario, shares)
        assert per_node["A"] == {SubflowId("1", 1): 0.5}
        assert per_node["B"] == {SubflowId("1", 2): 0.5}
        assert per_node["C"] == {}

    def test_missing_share_raises(self):
        scenario = fig1.make_scenario()
        with pytest.raises(KeyError):
            subflow_shares_by_node(scenario, {})


class TestBuilders:
    def test_80211_has_no_allocation(self):
        build = build_80211(fig1.make_scenario())
        assert build.name == "802.11"
        assert build.allocation is None

    def test_two_tier_shares_match_analysis(self):
        build = build_two_tier(fig1.make_scenario())
        assert build.subflow_shares[SubflowId("1", 1)] == pytest.approx(
            0.75, abs=1e-5
        )
        assert build.subflow_shares[SubflowId("1", 2)] == pytest.approx(
            0.25, abs=1e-5
        )

    def test_2pa_equal_per_hop_shares(self):
        build = build_2pa(fig1.make_scenario(), "centralized")
        assert build.name == "2PA-C"
        assert build.subflow_shares[SubflowId("1", 1)] == pytest.approx(0.5)
        assert build.subflow_shares[SubflowId("1", 2)] == pytest.approx(0.5)

    def test_2pa_distributed_mode(self):
        build = build_2pa(fig6.make_scenario(), "distributed")
        assert build.name == "2PA-D"
        assert build.allocation.share("2") == pytest.approx(0.2, abs=1e-5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_2pa(fig1.make_scenario(), "quantum")


class TestShortRuns:
    """Short (2 s simulated) end-to-end runs asserting the paper's shape."""

    @pytest.fixture(scope="class")
    def results(self):
        scenario = fig1.make_scenario()
        out = {}
        for name, build in (
            ("dcf", build_80211(scenario, seed=3)),
            ("two_tier", build_two_tier(scenario, seed=3)),
            ("tpa", build_2pa(scenario, "centralized", seed=3)),
        ):
            out[name] = build.run.run(seconds=8.0)
        return out

    def test_everyone_delivers_something(self, results):
        for name, metrics in results.items():
            assert metrics.total_effective_throughput_packets() > 100, name

    def test_dcf_starves_middle_subflow(self, results):
        m = results["dcf"]
        assert m.subflow_count("1", 2) < 0.2 * m.subflow_count("1", 1)

    def test_2pa_balances_flow1_hops(self, results):
        m = results["tpa"]
        up, down = m.subflow_count("1", 1), m.subflow_count("1", 2)
        assert abs(up - down) <= 0.05 * up

    def test_2pa_ratio_tracks_allocated_shares(self, results):
        m = results["tpa"]
        u1 = m.flows["1"].delivered_end_to_end
        u2 = m.flows["2"].delivered_end_to_end
        assert u1 / u2 == pytest.approx(2.0, rel=0.25)

    def test_2pa_loss_is_minimal(self, results):
        assert results["tpa"].loss_ratio() < 0.05

    def test_two_tier_loses_more_than_2pa(self, results):
        assert (results["two_tier"].loss_ratio()
                > 10 * results["tpa"].loss_ratio())

    def test_2pa_beats_others_on_effective_throughput(self, results):
        tpa = results["tpa"].total_effective_throughput_packets()
        assert tpa > results["dcf"].total_effective_throughput_packets()
        assert tpa > results["two_tier"].total_effective_throughput_packets()

    def test_determinism(self):
        scenario = fig1.make_scenario()
        a = build_2pa(scenario, "centralized", seed=9).run.run(1.0).summary()
        b = build_2pa(scenario, "centralized", seed=9).run.run(1.0).summary()
        assert a == b

    def test_seeds_change_details_not_shape(self):
        scenario = fig1.make_scenario()
        a = build_2pa(scenario, "centralized", seed=1).run.run(2.0)
        b = build_2pa(scenario, "centralized", seed=2).run.run(2.0)
        ra = a.flows["1"].delivered_end_to_end / max(
            a.flows["2"].delivered_end_to_end, 1)
        rb = b.flows["1"].delivered_end_to_end / max(
            b.flows["2"].delivered_end_to_end, 1)
        assert ra == pytest.approx(rb, rel=0.2)


class TestTrafficConfig:
    def test_custom_rate_reduces_offered_load(self):
        scenario = fig1.make_scenario()
        slow = TrafficConfig(packets_per_second=20)
        build = build_2pa(scenario, "centralized",
                          traffic=slow, seed=1)
        metrics = build.run.run(seconds=2.0)
        # 2 flows x 20 pkt/s x 2 s = 80 offered.
        offered = sum(m.offered for m in metrics.flows.values())
        assert offered == pytest.approx(80, abs=4)
        # Light load: (almost) everything delivered; an isolated
        # hidden-terminal retry-exhaustion is tolerated.
        assert metrics.total_lost_packets() <= 2
        assert metrics.total_effective_throughput_packets() == (
            pytest.approx(offered, abs=8)
        )

    def test_invalid_duration(self):
        build = build_80211(fig1.make_scenario())
        with pytest.raises(ValueError):
            build.run.run(seconds=0)
