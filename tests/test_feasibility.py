"""Tests for schedule feasibility (Sec. III-B, pentagon example)."""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    check_allocation_schedulability,
    check_schedulability,
    max_feasible_scaling,
)
from repro.core.model import SubflowId
from repro.graphs import Graph
from repro.scenarios import fig1, fig5, fig6


class TestPentagon:
    def test_clique_bound_is_unschedulable(self):
        analysis = fig5.make_analysis()
        lp = basic_fairness_lp_allocation(analysis)
        report = check_allocation_schedulability(analysis, lp.shares)
        assert not report.feasible
        assert report.schedule_length == pytest.approx(1.25, abs=1e-6)

    def test_uniform_two_fifths_is_schedulable(self):
        analysis = fig5.make_analysis()
        shares = {str(i): 0.4 for i in range(1, 6)}
        report = check_allocation_schedulability(analysis, shares)
        assert report.feasible
        assert report.schedule_length == pytest.approx(1.0, abs=1e-6)

    def test_max_scaling_is_four_fifths(self):
        analysis = fig5.make_analysis()
        rates = {SubflowId(str(i), 1): 0.5 for i in range(1, 6)}
        scale = max_feasible_scaling(analysis.graph, rates)
        assert scale == pytest.approx(0.8, abs=1e-6)

    def test_basic_shares_are_schedulable(self):
        analysis = fig5.make_analysis()
        shares = {str(i): 0.2 for i in range(1, 6)}
        report = check_allocation_schedulability(analysis, shares)
        assert report.feasible
        assert report.schedule_length == pytest.approx(0.5, abs=1e-6)


class TestPaperScenariosAreSchedulable:
    def test_fig1_lp_allocation(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        lp = basic_fairness_lp_allocation(analysis)
        report = check_allocation_schedulability(analysis, lp.shares)
        assert report.feasible

    def test_fig6_lp_allocation(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        lp = basic_fairness_lp_allocation(analysis)
        report = check_allocation_schedulability(analysis, lp.shares)
        assert report.feasible

    def test_schedule_covers_demands(self):
        """Returned time shares actually serve each subflow's demand."""
        analysis = ContentionAnalysis(fig1.make_scenario())
        lp = basic_fairness_lp_allocation(analysis)
        report = check_allocation_schedulability(analysis, lp.shares)
        served = {}
        for ind_set, t in report.schedule.items():
            for sid in ind_set:
                served[sid] = served.get(sid, 0.0) + t
        for flow in analysis.scenario.flows:
            for sub in flow.subflows:
                assert served.get(sub.sid, 0.0) >= (
                    lp.share(flow.flow_id) - 1e-6
                )


class TestEdgeCases:
    def test_zero_rates_trivially_feasible(self):
        g = Graph()
        sid = SubflowId("1", 1)
        g.add_vertex(sid)
        report = check_schedulability(g, {sid: 0.0})
        assert report.feasible
        assert report.schedule_length == 0.0

    def test_unknown_subflow_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            check_schedulability(g, {SubflowId("1", 1): 0.5})

    def test_single_subflow_full_rate(self):
        g = Graph()
        sid = SubflowId("1", 1)
        g.add_vertex(sid)
        report = check_schedulability(g, {sid: 1.0})
        assert report.feasible
        assert report.schedule_length == pytest.approx(1.0)

    def test_overloaded_single_subflow(self):
        g = Graph()
        sid = SubflowId("1", 1)
        g.add_vertex(sid)
        report = check_schedulability(g, {sid: 1.5})
        assert not report.feasible
