"""Property tests for the seeded RNG registry.

The fuzzer's reproducibility guarantees rest entirely on these two
properties: stream independence (draws on one stream never perturb
another) and insertion-order invariance (the same master seed yields
bit-identical streams no matter which streams were created first).
"""

import numpy as np

from repro.sim.rng import RngRegistry, _stable_hash

NAMES = ["alpha", ("verify", 0), ("verify", 1), ("node", "n3", "backoff"), 7]


def draws(registry, name, n=32):
    return registry.stream(name).integers(0, 2**31 - 1, size=n).tolist()


class TestDeterminism:
    def test_same_master_seed_bit_identical(self):
        a = RngRegistry(42)
        b = RngRegistry(42)
        for name in NAMES:
            assert draws(a, name) == draws(b, name)

    def test_different_master_seeds_differ(self):
        assert draws(RngRegistry(0), "alpha") != draws(
            RngRegistry(1), "alpha"
        )

    def test_stable_hash_is_interpreter_independent(self):
        # FNV-1a of repr(name): fixed expected values pin the function so
        # historical seeds keep regenerating the same scenarios forever.
        assert _stable_hash("alpha") == _stable_hash("alpha")
        assert _stable_hash(("verify", 0)) != _stable_hash(("verify", 1))
        assert _stable_hash("'alpha'") != _stable_hash("alpha")


class TestInsertionOrderInvariance:
    def test_creation_order_does_not_matter(self):
        forward = RngRegistry(7)
        backward = RngRegistry(7)
        want = {name: draws(forward, name) for name in NAMES}
        got = {name: draws(backward, name) for name in reversed(NAMES)}
        assert got == want

    def test_interleaved_draws_match_bulk_draws(self):
        """Alternating single draws across streams equals drawing each
        stream in one go — streams share no hidden state."""
        bulk = RngRegistry(3)
        want = {name: draws(bulk, name, n=8) for name in NAMES}
        inter = RngRegistry(3)
        got = {name: [] for name in NAMES}
        for _ in range(8):
            for name in NAMES:
                got[name].append(
                    int(inter.stream(name).integers(0, 2**31 - 1))
                )
        assert got == want

    def test_unrelated_stream_does_not_perturb(self):
        clean = RngRegistry(5)
        want = draws(clean, "victim")
        noisy = RngRegistry(5)
        noisy.stream("intruder").random(1000)
        assert draws(noisy, "victim") == want


class TestStreamIndependence:
    def test_distinct_names_distinct_sequences(self):
        registry = RngRegistry(0)
        seen = {}
        for name in NAMES:
            seq = tuple(draws(registry, name))
            assert seq not in seen.values(), (name, "collided")
            seen[name] = seq

    def test_streams_are_statistically_uncorrelated(self):
        registry = RngRegistry(0)
        a = registry.stream(("verify", 0)).random(4096)
        b = registry.stream(("verify", 1)).random(4096)
        corr = abs(float(np.corrcoef(a, b)[0, 1]))
        assert corr < 0.05

    def test_stream_is_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_uniform_slots_in_range(self):
        registry = RngRegistry(0)
        vals = [registry.uniform_slots("bo", 31.9) for _ in range(200)]
        assert all(0 <= v <= 31 for v in vals)
        assert registry.uniform_slots("bo", -2.0) == 0
