"""Tests for the experiment harness (worked examples, tables, CLI)."""

import pytest

from repro.cli import main
from repro.experiments import (
    run_all,
    run_table,
    run_table1,
    run_table2,
)
from repro.experiments.ablations import virtual_length_ablation
from repro.scenarios import fig1


class TestWorkedExamples:
    def test_every_example_matches_the_paper(self):
        reports = run_all(verbose=False)
        for report in reports:
            assert report.matches(), report.render()

    def test_render_contains_match_line(self):
        reports = run_all(verbose=False)
        assert "MATCH: True" in reports[0].render()


class TestTable1:
    @pytest.fixture(scope="class")
    def report(self):
        return run_table1()

    def test_centralized_matches_paper(self, report):
        for fid, expected in report.paper_centralized.items():
            assert report.centralized_shares[fid] == pytest.approx(
                expected, abs=1e-5
            )

    def test_rows_cover_all_sources(self, report):
        assert [r.source for r in report.rows] == ["A", "F", "H", "J", "M"]

    def test_render(self, report):
        text = report.render()
        assert "2PA-D shares" in text
        assert "source A" in text


class TestSimulationTables:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2(duration=3.0, seed=2)

    def test_columns_present(self, table2):
        assert [r.system for r in table2.results] == [
            "802.11", "two-tier", "2PA-C"
        ]

    def test_2pa_has_lowest_loss(self, table2):
        losses = {r.system: r.loss_ratio for r in table2.results}
        assert losses["2PA-C"] < losses["two-tier"]
        assert losses["2PA-C"] < losses["802.11"]

    def test_2pa_highest_effective_throughput(self, table2):
        totals = {r.system: r.total_effective for r in table2.results}
        assert totals["2PA-C"] >= totals["802.11"]
        assert totals["2PA-C"] >= totals["two-tier"]

    def test_render_rows(self, table2):
        text = table2.render()
        assert "r_F1.1 T" in text
        assert "loss ratio" in text

    def test_column_lookup(self, table2):
        assert table2.column("802.11").system == "802.11"
        with pytest.raises(KeyError):
            table2.column("nope")

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_table(fig1.make_scenario(), "t", ["magic"], duration=0.5)

    def test_allocation_recorded_for_2pa(self, table2):
        col = table2.column("2PA-C")
        assert col.allocation["1"] == pytest.approx(0.5)


class TestAblations:
    def test_virtual_length_ablation_values(self):
        sweep = virtual_length_ablation(hop_counts=(1, 3, 6))
        by_hops = {p.parameter: p.values for p in sweep.points}
        assert by_hops[1.0]["basic_share"] == pytest.approx(1.0)
        assert by_hops[6.0]["basic_share"] == pytest.approx(1 / 3)
        assert by_hops[6.0]["naive_share"] == pytest.approx(1 / 6)
        assert "hops" in sweep.render()


class TestCli:
    def test_examples_subcommand(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "MATCH: True" in out

    def test_table1_subcommand(self, capsys):
        assert main(["table1"]) == 0
        assert "2PA-D shares" in capsys.readouterr().out

    def test_table2_subcommand(self, capsys):
        assert main(["table2", "--duration", "0.5"]) == 0
        assert "loss ratio" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliAll:
    def test_all_subcommand_runs_everything(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["all", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "MATCH: True" in out
