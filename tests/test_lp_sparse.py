"""Property tests (hypothesis) for the sparse LP layer.

The revised backend's correctness reduces to three contracts checked
here against dense numpy reference implementations:

* ``CSRMatrix``/``CSCMatrix`` are faithful encodings: round-trips are
  representation-exact, slicing matches fancy indexing, and the
  matvec/rmatvec kernels match ``@``;
* ``SparseLP.from_problem`` is bit-identical to
  ``LinearProgram.to_dense()`` — the revised backend provably solves
  the same LP the dense backend sees;
* ``BasisFactors`` stays numerically faithful to the exact basis
  inverse under random pivot (column-replacement) sequences, and a
  fresh refactorization agrees with the accumulated eta file.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.lp import CSRMatrix, LinearProgram, SparseLP
from repro.lp.revised import BasisFactors

# Values drawn from a small exact set: sums and products stay exact in
# float64, so structural comparisons can be strict equality.
exact_floats = st.sampled_from(
    [0.0, 0.0, 0.0, 1.0, -1.0, 2.0, -2.0, 0.5, -0.5, 3.0, 0.25]
)


@st.composite
def dense_matrices(draw, max_dim=6):
    m = draw(st.integers(0, max_dim))
    n = draw(st.integers(0, max_dim))
    rows = draw(st.lists(
        st.lists(exact_floats, min_size=n, max_size=n),
        min_size=m, max_size=m,
    ))
    return np.array(rows, dtype=float).reshape(m, n)


@st.composite
def random_lps(draw, max_vars=5, max_cons=5):
    n = draw(st.integers(1, max_vars))
    names = [f"v{j}" for j in range(n)]
    lp = LinearProgram()
    for v in names:
        lp.add_variable(v)
    obj = draw(st.lists(exact_floats, min_size=n, max_size=n))
    lp.maximize({v: c for v, c in zip(names, obj) if c != 0.0})
    for coeffs in draw(st.lists(
        st.lists(exact_floats, min_size=n, max_size=n),
        min_size=0, max_size=max_cons,
    )):
        bound = draw(exact_floats)
        lp.add_constraint(
            {v: c for v, c in zip(names, coeffs) if c != 0.0}, bound
        )
    for v in names:
        if draw(st.booleans()):
            lp.set_lower_bound(v, abs(draw(exact_floats)))
    return lp


def assert_same_csr(a: CSRMatrix, b: CSRMatrix) -> None:
    """Representation-identical, not merely numerically equal."""
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


class TestCSRRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(dense=dense_matrices())
    def test_from_dense_to_dense_exact(self, dense):
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(),
                              dense)

    @settings(max_examples=60, deadline=None)
    @given(dense=dense_matrices())
    def test_from_rows_matches_from_dense(self, dense):
        rows = [
            [(j, dense[i, j]) for j in range(dense.shape[1])]
            for i in range(dense.shape[0])
        ]
        assert_same_csr(CSRMatrix.from_rows(rows, dense.shape[1]),
                        CSRMatrix.from_dense(dense))

    @settings(max_examples=60, deadline=None)
    @given(dense=dense_matrices())
    def test_nnz_and_row_view(self, dense):
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == int(np.count_nonzero(dense))
        for i in range(dense.shape[0]):
            cols, vals = csr.row(i)
            assert np.array_equal(cols, np.flatnonzero(dense[i]))
            assert np.array_equal(vals, dense[i, cols])


class TestSlicingVsDense:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dense=dense_matrices(), data=st.data())
    def test_select_rows_matches_fancy_indexing(self, dense, data):
        m = dense.shape[0]
        rows = data.draw(st.lists(st.integers(0, max(0, m - 1)),
                                  max_size=2 * m + 1)) if m else []
        got = CSRMatrix.from_dense(dense).select_rows(rows)
        assert_same_csr(got, CSRMatrix.from_dense(dense[rows]))

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dense=dense_matrices(), data=st.data())
    def test_select_columns_matches_fancy_indexing(self, dense, data):
        n = dense.shape[1]
        cols = data.draw(st.lists(
            st.integers(0, max(0, n - 1)), max_size=n, unique=True,
        )) if n else []
        got = CSRMatrix.from_dense(dense).select_columns(cols)
        assert_same_csr(got, CSRMatrix.from_dense(dense[:, cols]))

    @settings(max_examples=60, deadline=None)
    @given(dense=dense_matrices())
    def test_to_csc_transposes_faithfully(self, dense):
        csc = CSRMatrix.from_dense(dense).to_csc()
        assert np.array_equal(csc.to_dense(), dense)
        for j in range(dense.shape[1]):
            rows, vals = csc.column(j)
            assert np.array_equal(rows, np.flatnonzero(dense[:, j]))
            assert np.array_equal(vals, dense[rows, j])


class TestKernelsVsDense:
    @settings(max_examples=60, deadline=None)
    @given(dense=dense_matrices(), data=st.data())
    def test_matvec_and_rmatvec(self, dense, data):
        m, n = dense.shape
        x = np.array(data.draw(st.lists(exact_floats, min_size=n,
                                        max_size=n)), dtype=float)
        y = np.array(data.draw(st.lists(exact_floats, min_size=m,
                                        max_size=m)), dtype=float)
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.matvec(x), dense @ x,
                           rtol=0, atol=1e-12)
        assert np.allclose(csr.rmatvec(y), dense.T @ y,
                           rtol=0, atol=1e-12)
        assert np.allclose(csr.to_csc().rmatvec(y), dense.T @ y,
                           rtol=0, atol=1e-12)


class TestSparseLPFromProblem:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lp=random_lps())
    def test_round_trip_bit_identical_to_dense(self, lp):
        sp = SparseLP.from_problem(lp)
        c_ref, a_ref, b_ref, lb_ref = lp.to_dense()
        c, a, b, lb = sp.to_dense()
        assert sp.names == tuple(lp.variables)
        assert np.array_equal(c, c_ref)
        assert np.array_equal(a, a_ref)
        assert np.array_equal(b, b_ref)
        assert np.array_equal(lb, lb_ref)


# ----------------------------------------------------------------------
# BasisFactors under random pivot sequences
# ----------------------------------------------------------------------

@st.composite
def pivot_walks(draw, max_dim=5, max_pivots=12):
    """A well-conditioned start basis plus a random pivot sequence.

    Diagonal dominance keeps every intermediate basis provably
    nonsingular without rejection sampling; the per-step ``assume`` on
    the pivot element mirrors the solver, which never pivots on an
    ``_EPS``-small entry.
    """
    m = draw(st.integers(1, max_dim))
    entries = st.integers(-2, 2).map(float)
    start = np.array(draw(st.lists(
        st.lists(entries, min_size=m, max_size=m),
        min_size=m, max_size=m,
    ))) + 3.0 * m * np.eye(m)
    steps = draw(st.lists(
        st.tuples(
            st.integers(0, m - 1),
            st.lists(entries, min_size=m, max_size=m),
        ),
        max_size=max_pivots,
    ))
    return start, [
        (r, np.array(col) + 3.0 * m * np.eye(m)[r])
        for r, col in steps
    ]


def _check_against_dense(factors, dense_b, rhs):
    assert np.allclose(factors.ftran(rhs),
                       np.linalg.solve(dense_b, rhs),
                       rtol=1e-8, atol=1e-8)
    assert np.allclose(factors.btran(rhs),
                       np.linalg.solve(dense_b.T, rhs),
                       rtol=1e-8, atol=1e-8)


class TestBasisFactorsStability:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(walk=pivot_walks(), data=st.data())
    def test_eta_file_tracks_dense_inverse(self, walk, data):
        start, steps = walk
        m = start.shape[0]
        rhs = np.array(data.draw(st.lists(
            st.integers(-3, 3).map(float), min_size=m, max_size=m,
        )))
        dense_b = start.copy()
        factors = BasisFactors(start)
        _check_against_dense(factors, dense_b, rhs)
        for r, col in steps:
            w = factors.ftran(col)
            assume(abs(w[r]) > 1e-6)  # the solver never pivots on ~0
            factors.update(r, w)
            dense_b[:, r] = col
            _check_against_dense(factors, dense_b, rhs)
            # A fresh refactorization of the same basis agrees with the
            # eta file — folding the file is drift-free up to fp noise.
            _check_against_dense(BasisFactors(dense_b), dense_b, rhs)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(walk=pivot_walks(max_dim=4, max_pivots=6))
    def test_tiny_refactor_interval_flags_rebuild(self, walk):
        start, steps = walk
        factors = BasisFactors(start, refactor_every=1)
        assert not factors.needs_refactor
        for r, col in steps:
            w = factors.ftran(col)
            assume(abs(w[r]) > 1e-6)
            factors.update(r, w)
            assert factors.needs_refactor
            assert factors.updates >= 1
            break

    def test_zero_pivot_rejected(self):
        factors = BasisFactors(np.eye(2))
        w = factors.ftran(np.array([1.0, 0.0]))  # e1: w[1] == 0
        with pytest.raises(np.linalg.LinAlgError):
            factors.update(1, w)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            BasisFactors(np.ones((2, 3)))
