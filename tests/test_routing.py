"""Tests for shortest-path routing and the DSR-lite protocol."""

import pytest

from repro.core.model import Flow, Network
from repro.routing import (
    DsrProtocol,
    connectivity_graph,
    hop_distance,
    is_shortest,
    route_flows,
    shortest_route,
)


def grid_network():
    """A 3x3 grid with 200 m spacing and 250 m range (4-connectivity)."""
    positions = {
        f"n{r}{c}": (c * 200.0, r * 200.0)
        for r in range(3) for c in range(3)
    }
    return Network.from_positions(positions)


class TestShortestPaths:
    def test_route_on_line(self):
        net = Network.from_positions(
            {"a": (0, 0), "b": (200, 0), "c": (400, 0)}
        )
        assert shortest_route(net, "a", "c") == ["a", "b", "c"]

    def test_disconnected_returns_none(self):
        net = Network.from_positions({"a": (0, 0), "z": (5000, 0)})
        assert shortest_route(net, "a", "z") is None
        assert hop_distance(net, "a", "z") is None

    def test_grid_distance(self):
        net = grid_network()
        assert hop_distance(net, "n00", "n22") == 4

    def test_route_flows(self):
        net = grid_network()
        flows = route_flows(net, [("n00", "n02"), ("n20", "n22")],
                            weights=[2.0, 1.0])
        assert flows[0].length == 2
        assert flows[0].weight == 2.0
        assert flows[1].flow_id == "2"

    def test_route_flows_disconnected_raises(self):
        net = Network.from_positions({"a": (0, 0), "z": (5000, 0)})
        with pytest.raises(ValueError):
            route_flows(net, [("a", "z")])

    def test_is_shortest(self):
        net = grid_network()
        assert is_shortest(net, Flow("1", ["n00", "n01", "n02"]))
        assert not is_shortest(
            net, Flow("2", ["n00", "n10", "n11", "n01", "n02"])
        )

    def test_connectivity_graph_shape(self):
        net = grid_network()
        g = connectivity_graph(net)
        assert g.num_vertices() == 9
        assert g.num_edges() == 12  # 4-connected 3x3 grid


class TestDsr:
    def test_discovery_finds_shortest_path(self):
        net = grid_network()
        dsr = DsrProtocol(net)
        route = dsr.find_route("n00", "n22")
        assert route is not None
        assert len(route) - 1 == 4  # matches BFS distance
        assert dsr.discoveries == 1

    def test_trivial_route(self):
        dsr = DsrProtocol(grid_network())
        assert dsr.find_route("n00", "n00") == ["n00"]

    def test_route_cache_hit(self):
        dsr = DsrProtocol(grid_network())
        first = dsr.find_route("n00", "n22")
        second = dsr.find_route("n00", "n22")
        assert first == second
        assert dsr.discoveries == 1
        assert dsr.cache_hits == 1

    def test_intermediate_nodes_learn_route(self):
        dsr = DsrProtocol(grid_network())
        route = dsr.find_route("n00", "n22")
        middle = route[len(route) // 2]
        assert dsr.nodes[middle].cached_route("n00", "n22") == tuple(route)

    def test_unreachable_returns_none(self):
        net = Network.from_positions({"a": (0, 0), "z": (5000, 0)})
        dsr = DsrProtocol(net)
        assert dsr.find_route("a", "z") is None

    def test_invalidate_forces_rediscovery(self):
        dsr = DsrProtocol(grid_network())
        route = dsr.find_route("n00", "n22")
        # Break the first link on the cached route at the source's cache.
        dsr.nodes["n00"].invalidate(route[0], route[1])
        assert dsr.nodes["n00"].cached_route("n00", "n22") is None
        again = dsr.find_route("n00", "n22")
        assert again is not None
        assert dsr.discoveries == 2

    def test_build_flows(self):
        dsr = DsrProtocol(grid_network())
        flows = dsr.build_flows([("n00", "n02"), ("n02", "n00")],
                                weights=[1.0, 3.0])
        assert [f.flow_id for f in flows] == ["1", "2"]
        assert flows[1].weight == 3.0
        assert flows[0].length == 2

    def test_build_flows_unreachable_raises(self):
        net = Network.from_positions({"a": (0, 0), "z": (5000, 0)})
        with pytest.raises(ValueError):
            DsrProtocol(net).build_flows([("a", "z")])

    def test_routes_have_no_shortcuts(self):
        """DSR's shortest paths satisfy the paper's Sec. II-D assumption."""
        net = grid_network()
        dsr = DsrProtocol(net)
        route = dsr.find_route("n00", "n22")
        flow = Flow("1", route)
        assert not net.has_shortcut(flow)
