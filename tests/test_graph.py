"""Unit tests for the base Graph class."""

import pytest

from repro.graphs import Graph, to_networkx


def triangle():
    return Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])


class TestConstruction:
    def test_add_vertex_and_edge(self):
        g = Graph()
        g.add_vertex("a")
        g.add_edge("a", "b")
        assert g.has_vertex("b")
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")

    def test_vertex_attributes(self):
        g = Graph()
        g.add_vertex("a", weight=2.5)
        assert g.attr("a", "weight") == 2.5
        assert g.attr("a", "missing", 7) == 7
        g.set_attr("a", "weight", 3.0)
        assert g.attr("a", "weight") == 3.0

    def test_re_adding_vertex_merges_attrs(self):
        g = Graph()
        g.add_vertex("a", x=1)
        g.add_vertex("a", y=2)
        assert g.attr("a", "x") == 1
        assert g.attr("a", "y") == 2

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([("a", "b")], vertices=["c"])
        assert set(g.vertices()) == {"a", "b", "c"}
        assert g.degree("c") == 0

    def test_duplicate_edges_idempotent(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert g.num_edges() == 1


class TestMutation:
    def test_remove_edge(self):
        g = triangle()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.has_edge("b", "c")

    def test_remove_missing_edge_raises(self):
        g = triangle()
        with pytest.raises(KeyError):
            g.remove_edge("a", "zz")

    def test_remove_vertex_cleans_incident_edges(self):
        g = triangle()
        g.remove_vertex("a")
        assert not g.has_vertex("a")
        assert g.num_edges() == 1
        assert g.neighbors("b") == {"c"}


class TestQueries:
    def test_counts(self):
        g = triangle()
        assert g.num_vertices() == 3
        assert g.num_edges() == 3
        assert len(g) == 3

    def test_edges_reported_once(self):
        g = triangle()
        assert len(g.edges()) == 3
        canon = {frozenset(e) for e in g.edges()}
        assert len(canon) == 3

    def test_iteration_and_contains(self):
        g = triangle()
        assert set(iter(g)) == {"a", "b", "c"}
        assert "a" in g
        assert "zz" not in g

    def test_degree(self):
        g = Graph.from_edges([("a", "b"), ("a", "c")])
        assert g.degree("a") == 2
        assert g.degree("b") == 1


class TestDerivedGraphs:
    def test_subgraph_keeps_attrs_and_edges(self):
        g = triangle()
        g.set_attr("a", "weight", 5)
        sub = g.subgraph(["a", "b"])
        assert set(sub.vertices()) == {"a", "b"}
        assert sub.has_edge("a", "b")
        assert sub.attr("a", "weight") == 5
        assert sub.num_edges() == 1

    def test_induced_subgraph_matches_subgraph_in_caller_order(self):
        g = triangle()
        g.add_edge("c", "d")
        g.set_attr("a", "weight", 5)
        fast = g.induced_subgraph(["b", "a"])
        slow = g.subgraph(["a", "b"])
        assert fast.has_edge("a", "b")
        assert fast.num_edges() == slow.num_edges() == 1
        assert fast.attr("a", "weight") == 5
        # subgraph preserves the parent's insertion order; induced
        # follows the caller's.
        assert list(fast.vertices()) == ["b", "a"]
        assert list(slow.vertices()) == ["a", "b"]

    def test_induced_subgraph_rejects_unknown_vertices(self):
        with pytest.raises(KeyError):
            triangle().induced_subgraph(["a", "zz"])

    def test_complement_of_triangle_is_empty(self):
        comp = triangle().complement()
        assert comp.num_edges() == 0
        assert comp.num_vertices() == 3

    def test_complement_of_path(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        comp = g.complement()
        assert comp.has_edge("a", "c")
        assert comp.num_edges() == 1

    def test_copy_is_independent(self):
        g = triangle()
        h = g.copy()
        h.remove_vertex("a")
        assert g.has_vertex("a")


class TestPredicates:
    def test_is_clique(self):
        g = triangle()
        assert g.is_clique(["a", "b", "c"])
        assert g.is_clique(["a", "b"])
        assert g.is_clique([])

    def test_is_not_clique(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert not g.is_clique(["a", "b", "c"])

    def test_is_independent_set(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert g.is_independent_set(["a", "c"])
        assert not g.is_independent_set(["a", "b"])


def test_to_networkx_round_trip():
    g = triangle()
    nx_g = to_networkx(g)
    assert set(nx_g.nodes) == set(g.vertices())
    assert nx_g.number_of_edges() == g.num_edges()
