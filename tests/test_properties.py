"""Property-based tests (hypothesis) on the core invariants.

The paper's theory makes universally-quantified claims; these tests check
them on randomized scenarios instead of the hand-built figures:

* basic shares always sum to at most B per contending flow group and are
  weight-proportional;
* the Prop. 2 LP allocation always (a) satisfies basic fairness,
  (b) satisfies every clique constraint, (c) dominates the pure basic
  allocation in total effective throughput;
* Prop. 1's bound always dominates the fairness-constrained allocation;
* the distributed allocation always satisfies the global clique
  constraints it knows about locally... (it may not know all of them, so
  only per-flow basic fairness is asserted);
* virtual length and chain coloring stay consistent for any hop count.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ContentionAnalysis,
    basic_allocation,
    basic_fairness_lp_allocation,
    basic_shares,
    fairness_constrained_allocation,
    fairness_upper_bound,
    naive_allocation,
    run_distributed,
    satisfies_basic_fairness,
    satisfies_fairness_constraint,
    virtual_length,
)
from repro.graphs import (
    chain_coloring,
    chain_contention_graph,
    is_proper_coloring,
    num_colors,
)
from repro.scenarios import make_random_scenario

scenario_params = st.builds(
    dict,
    num_nodes=st.integers(8, 18),
    num_flows=st.integers(2, 5),
    seed=st.integers(0, 500),
)


def make(params):
    return make_random_scenario(
        max_hops=5, **params
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=scenario_params)
def test_basic_shares_weight_proportional_and_capacity_bounded(params):
    scenario = make(params)
    analysis = ContentionAnalysis(scenario)
    for group in analysis.groups:
        shares = basic_shares(group, scenario.capacity)
        # Weight proportionality.
        per_unit = {fid: shares[fid] / f.weight
                    for fid, f in ((g.flow_id, g) for g in group)}
        values = list(per_unit.values())
        assert max(values) - min(values) < 1e-9
        # Total channel time across the group at most B.
        used = sum(shares[f.flow_id] * f.virtual_length for f in group)
        assert used <= scenario.capacity + 1e-9


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=scenario_params)
def test_lp_allocation_invariants(params):
    scenario = make(params)
    analysis = ContentionAnalysis(scenario)
    alloc = basic_fairness_lp_allocation(analysis)
    # (a) basic fairness.
    for group in analysis.groups:
        group_shares = {f.flow_id: alloc.share(f.flow_id) for f in group}
        assert satisfies_basic_fairness(group_shares, group,
                                        scenario.capacity, tol=1e-6)
    # (b) every clique constraint.
    for coeffs in analysis.all_coefficients():
        load = sum(alloc.share(fid) * n for fid, n in coeffs.items())
        assert load <= scenario.capacity + 1e-6
    # (c) dominates the pure basic allocation.
    basic = basic_allocation(analysis)
    assert (alloc.total_effective_throughput
            >= basic.total_effective_throughput - 1e-6)
    # (d) naive allocation is dominated by basic.
    naive = naive_allocation(analysis)
    assert (basic.total_effective_throughput
            >= naive.total_effective_throughput - 1e-9)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=scenario_params)
def test_prop1_bound_dominates_fairness_allocation(params):
    scenario = make(params)
    analysis = ContentionAnalysis(scenario)
    alloc = fairness_constrained_allocation(analysis)
    # The fairness constraint is scoped to each contending flow group
    # (Sec. II-C: "we only define the fairness constraint among
    # contending flows"); disjoint groups scale independently.
    for group in analysis.groups:
        group_shares = {f.flow_id: alloc.share(f.flow_id) for f in group}
        group_weights = {f.flow_id: f.weight for f in group}
        assert satisfies_fairness_constraint(
            group_shares, group_weights, epsilon=1e-9
        )
    # Prop. 1's bound uses the global weighted clique number, so it
    # dominates every group's scaled allocation.
    bound = fairness_upper_bound(analysis)
    for fid in scenario.flow_ids:
        assert alloc.share(fid) >= bound.share(fid) - 1e-9


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=scenario_params)
def test_distributed_allocation_gives_positive_weight_scaled_shares(params):
    scenario = make(params)
    result = run_distributed(scenario)
    for flow in scenario.flows:
        assert result.share(flow.flow_id) > 0
        # No flow exceeds the whole channel.
        assert result.share(flow.flow_id) <= scenario.capacity + 1e-9


@given(hops=st.integers(0, 40))
def test_virtual_length_properties(hops):
    v = virtual_length(hops)
    assert v <= 3
    assert v <= hops
    assert v == hops or hops > 3


@given(hops=st.integers(1, 30))
def test_chain_coloring_always_proper_with_min_colors(hops):
    graph = chain_contention_graph(hops)
    coloring = chain_coloring(hops)
    assert is_proper_coloring(graph, coloring)
    assert num_colors(coloring) == virtual_length(hops)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=scenario_params)
def test_contention_analysis_structure(params):
    """Cliques cover every subflow; groups partition the flows."""
    scenario = make(params)
    analysis = ContentionAnalysis(scenario)
    covered = set()
    for clique in analysis.cliques:
        covered |= set(clique)
        assert analysis.graph.is_clique(clique)
    assert covered == set(analysis.subflow_ids())
    grouped = [f.flow_id for g in analysis.groups for f in g]
    assert sorted(grouped) == sorted(scenario.flow_ids)
