"""Tests for connected components and BFS utilities.

The property-based half (hypothesis) pins down the guarantees the
component-sharded allocation engine builds on: components partition the
vertex set, the partition is invariant under insertion order, and the
union of per-component maximal cliques is exactly the global clique set
— the structural fact that makes sharding the Prop. 2 LP *exact*.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bfs_hop_counts,
    bfs_reachable,
    bfs_shortest_path,
    connected_components,
    is_connected,
    maximal_cliques,
    to_networkx,
)


def two_islands():
    return Graph.from_edges([("a", "b"), ("b", "c"), ("x", "y")],
                            vertices=["lone"])


class TestComponents:
    def test_component_partition(self):
        comps = connected_components(two_islands())
        assert sorted(sorted(c) for c in comps) == [
            ["a", "b", "c"], ["lone"], ["x", "y"]
        ]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_is_connected(self):
        assert is_connected(Graph.from_edges([("a", "b"), ("b", "c")]))
        assert not is_connected(two_islands())
        assert is_connected(Graph())  # vacuous

    def test_reachable(self):
        g = two_islands()
        assert bfs_reachable(g, "a") == {"a", "b", "c"}
        assert bfs_reachable(g, "lone") == {"lone"}


@st.composite
def vertices_and_edges(draw):
    """A small random undirected graph as (vertices, edges)."""
    n = draw(st.integers(min_value=1, max_value=12))
    vertices = list(range(n))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=30,
    ))
    edges = [(a, b) for a, b in pairs if a != b]
    return vertices, edges


def _build(vertices, edges):
    return Graph.from_edges(edges, vertices=vertices)


class TestComponentProperties:
    @settings(max_examples=60, deadline=None)
    @given(vertices_and_edges())
    def test_components_partition_the_vertex_set(self, graph_spec):
        vertices, edges = graph_spec
        comps = connected_components(_build(vertices, edges))
        flat = [v for comp in comps for v in comp]
        assert len(flat) == len(set(flat))  # pairwise disjoint
        assert set(flat) == set(vertices)   # covering
        comp_of = {v: i for i, comp in enumerate(comps) for v in comp}
        for a, b in edges:                  # no edge crosses components
            assert comp_of[a] == comp_of[b]

    @settings(max_examples=60, deadline=None)
    @given(vertices_and_edges(), st.randoms(use_true_random=False))
    def test_partition_invariant_under_insertion_order(
        self, graph_spec, rng
    ):
        vertices, edges = graph_spec
        baseline = connected_components(_build(vertices, edges))
        shuffled_v = list(vertices)
        shuffled_e = list(edges)
        rng.shuffle(shuffled_v)
        rng.shuffle(shuffled_e)
        permuted = connected_components(_build(shuffled_v, shuffled_e))
        assert ({frozenset(c) for c in baseline}
                == {frozenset(c) for c in permuted})
        # Identical insertion order → identical component *list*.
        assert connected_components(_build(vertices, edges)) == baseline

    @settings(max_examples=60, deadline=None)
    @given(vertices_and_edges())
    def test_union_of_component_cliques_is_the_global_clique_set(
        self, graph_spec
    ):
        """A maximal clique is connected, so it lives in exactly one
        component — sharding clique enumeration loses nothing."""
        vertices, edges = graph_spec
        graph = _build(vertices, edges)
        global_cliques = {frozenset(c) for c in maximal_cliques(graph)}
        per_component = {
            frozenset(c)
            for comp in connected_components(graph)
            for c in maximal_cliques(graph.subgraph(comp))
        }
        assert per_component == global_cliques


class TestShortestPaths:
    def test_direct_path(self):
        g = Graph.from_edges([("a", "b")])
        assert bfs_shortest_path(g, "a", "b") == ["a", "b"]

    def test_source_equals_target(self):
        g = Graph.from_edges([("a", "b")])
        assert bfs_shortest_path(g, "a", "a") == ["a"]

    def test_no_path(self):
        assert bfs_shortest_path(two_islands(), "a", "x") is None

    def test_shortest_over_longer_alternative(self):
        g = Graph.from_edges(
            [("s", "m"), ("m", "t"), ("s", "x"), ("x", "y"), ("y", "t")]
        )
        path = bfs_shortest_path(g, "s", "t")
        assert path == ["s", "m", "t"]

    @pytest.mark.parametrize("seed", range(5))
    def test_lengths_match_networkx(self, seed):
        rng = np.random.default_rng(seed)
        g = Graph()
        for i in range(12):
            g.add_vertex(i)
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.3:
                    g.add_edge(i, j)
        nx_g = to_networkx(g)
        lengths = dict(nx.shortest_path_length(nx_g, source=0))
        ours = bfs_hop_counts(g, 0)
        assert ours == lengths

    def test_hop_counts(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
        counts = bfs_hop_counts(g, "a")
        assert counts == {"a": 0, "b": 1, "c": 2, "d": 3}
