"""Tests for connected components and BFS utilities."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    Graph,
    bfs_hop_counts,
    bfs_reachable,
    bfs_shortest_path,
    connected_components,
    is_connected,
    to_networkx,
)


def two_islands():
    return Graph.from_edges([("a", "b"), ("b", "c"), ("x", "y")],
                            vertices=["lone"])


class TestComponents:
    def test_component_partition(self):
        comps = connected_components(two_islands())
        assert sorted(sorted(c) for c in comps) == [
            ["a", "b", "c"], ["lone"], ["x", "y"]
        ]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_is_connected(self):
        assert is_connected(Graph.from_edges([("a", "b"), ("b", "c")]))
        assert not is_connected(two_islands())
        assert is_connected(Graph())  # vacuous

    def test_reachable(self):
        g = two_islands()
        assert bfs_reachable(g, "a") == {"a", "b", "c"}
        assert bfs_reachable(g, "lone") == {"lone"}


class TestShortestPaths:
    def test_direct_path(self):
        g = Graph.from_edges([("a", "b")])
        assert bfs_shortest_path(g, "a", "b") == ["a", "b"]

    def test_source_equals_target(self):
        g = Graph.from_edges([("a", "b")])
        assert bfs_shortest_path(g, "a", "a") == ["a"]

    def test_no_path(self):
        assert bfs_shortest_path(two_islands(), "a", "x") is None

    def test_shortest_over_longer_alternative(self):
        g = Graph.from_edges(
            [("s", "m"), ("m", "t"), ("s", "x"), ("x", "y"), ("y", "t")]
        )
        path = bfs_shortest_path(g, "s", "t")
        assert path == ["s", "m", "t"]

    @pytest.mark.parametrize("seed", range(5))
    def test_lengths_match_networkx(self, seed):
        rng = np.random.default_rng(seed)
        g = Graph()
        for i in range(12):
            g.add_vertex(i)
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.3:
                    g.add_edge(i, j)
        nx_g = to_networkx(g)
        lengths = dict(nx.shortest_path_length(nx_g, source=0))
        ours = bfs_hop_counts(g, 0)
        assert ours == lengths

    def test_hop_counts(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
        counts = bfs_hop_counts(g, "a")
        assert counts == {"a": 0, "b": 1, "c": 2, "d": 3}
