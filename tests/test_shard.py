"""Tests for the component-sharded allocation engine (``perf/shard.py``).

The contract under test is *bitwise* identity: the Prop. 2 LP
factorizes exactly over connected components of the contention graph,
so the sharded solve — per-component LPs, per-component memo, parallel
fan-out — must reproduce the monolithic
:func:`~repro.core.allocation.basic_fairness_lp_allocation` result to
the last bit, on every library scenario, at any job count, from a cold
or a warm (restored) cache.  Alongside the differentials: dirty
tracking (churn touching one island re-solves only that island), memo
dump/load round-trips, the batch admission API, and the runtime seam.
"""

import pytest

from repro.core.allocation import (
    basic_fairness_lp_allocation,
    build_basic_fairness_lp,
)
from repro.core.contention import ContentionAnalysis
from repro.core.model import Flow, Network, Scenario
from repro.obs import registry as obs
from repro.obs.registry import MetricsRegistry
from repro.perf.shard import (
    BatchAllocationEngine,
    ShardedSolver,
    component_problems,
)
from repro.resilience.admission import ADMIT, REASON_FLOOR
from repro.resilience.runtime import AllocatorRuntime, RuntimeConfig

from tests.test_lp_revised import LIBRARY

#: fig3's shortcut topology has infeasible basic floors: the monolithic
#: solve raises, and the sharded solve must raise the same way.
INFEASIBLE = {"fig3_shortcut"}
FEASIBLE = sorted(set(LIBRARY) - INFEASIBLE)


def _chain(prefix, n):
    nodes = [f"{prefix}{i}" for i in range(n)]
    links = [(nodes[i], nodes[i + 1]) for i in range(n - 1)]
    return nodes, links


def two_islands(weight_b=1.0):
    """Two disjoint 4-hop chains: exactly two contention components."""
    a_nodes, a_links = _chain("a", 5)
    b_nodes, b_links = _chain("b", 5)
    network = Network.from_links(a_nodes + b_nodes, a_links + b_links)
    flows = [
        Flow("A", tuple(a_nodes), 1.0),
        Flow("B", tuple(b_nodes), weight_b),
    ]
    return Scenario(network, flows, name="two-islands")


class TestLibraryDifferential:
    @pytest.mark.parametrize("name", FEASIBLE)
    def test_sharded_matches_monolithic_bitwise(self, name):
        analysis = ContentionAnalysis(LIBRARY[name]())
        reference = basic_fairness_lp_allocation(analysis).shares
        for jobs in (1, 2):
            shares = ShardedSolver(jobs=jobs).solve(analysis)
            assert shares == reference  # bitwise, no tolerance

    def test_infeasible_scenario_raises_like_monolithic(self):
        analysis = ContentionAnalysis(LIBRARY["fig3_shortcut"]())
        with pytest.raises(RuntimeError, match="basic-fairness LP"):
            basic_fairness_lp_allocation(analysis)
        with pytest.raises(RuntimeError, match="basic-fairness LP"):
            ShardedSolver().solve(analysis)

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_component_lps_byte_identical_to_monolithic_builder(
        self, name
    ):
        """The single-pass splitter reproduces ``build_basic_fairness_lp``
        exactly: same variable order, objective, constraint coefficient
        insertion order, bounds, labels, and lower bounds."""
        scenario = LIBRARY[name]()
        analysis = ContentionAnalysis(scenario)
        problems = component_problems(analysis)
        assert len(problems) == len(analysis.groups)
        for problem, group in zip(problems, analysis.groups):
            reference = build_basic_fairness_lp(
                analysis, group, scenario.capacity
            )
            assert problem.lp.variables == reference.variables
            assert problem.lp.objective == reference.objective
            assert problem.lp.lower_bounds == reference.lower_bounds
            assert [
                (dict(c.coeffs), c.bound, c.label)
                for c in problem.lp.constraints
            ] == [
                (dict(c.coeffs), c.bound, c.label)
                for c in reference.constraints
            ]
            assert problem.group_ids == tuple(
                f.flow_id for f in group
            )


class TestShardedSolverMemo:
    def test_second_solve_reuses_every_component(self):
        analysis = ContentionAnalysis(two_islands())
        solver = ShardedSolver()
        first = solver.solve(analysis)
        assert solver.last_stats["components"] == 2
        assert solver.last_stats["dirty"] == 2
        second = solver.solve(analysis)
        assert second == first
        assert solver.last_stats["dirty"] == 0
        assert solver.last_stats["reused"] == 2

    def test_dirty_tracking_is_per_component(self):
        """Churn touching island B re-solves B only; A is reused."""
        solver = ShardedSolver()
        solver.solve(ContentionAnalysis(two_islands()))
        churned = ContentionAnalysis(two_islands(weight_b=2.0))
        shares = solver.solve(churned)
        assert solver.last_stats["dirty"] == 1
        assert solver.last_stats["reused"] == 1
        assert shares == basic_fairness_lp_allocation(churned).shares

    def test_memo_disabled_always_solves(self):
        analysis = ContentionAnalysis(two_islands())
        solver = ShardedSolver(memo=False)
        solver.solve(analysis)
        solver.solve(analysis)
        assert solver.last_stats["dirty"] == 2
        assert solver.last_stats["reused"] == 0
        assert solver.dump_state() is None

    def test_lru_eviction_bounds_the_memo(self):
        analysis = ContentionAnalysis(two_islands())
        solver = ShardedSolver(max_entries=1)
        solver.solve(analysis)
        assert len(solver.dump_state()) == 1

    def test_dump_load_round_trip_keeps_reuse_bitwise(self):
        analysis = ContentionAnalysis(two_islands())
        warm = ShardedSolver()
        reference = warm.solve(analysis)
        dump = warm.dump_state()
        restored = ShardedSolver()
        restored.load_state(dump)
        shares = restored.solve(analysis)
        assert shares == reference
        # Same-process fingerprints are stable, so the restored cache
        # hits on every component and its dump replays identically.
        assert restored.last_stats["dirty"] == 0
        assert restored.last_stats["reused"] == 2
        assert restored.dump_state() == dump

    def test_shard_counters_and_latency_observation(self):
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            solver = ShardedSolver()
            analysis = ContentionAnalysis(two_islands())
            solver.solve(analysis)
            solver.solve(analysis)
        finally:
            obs.set_registry(None)
        snap = registry.snapshot()
        assert snap["counters"]["runtime.shard.components"] == 4
        assert snap["counters"]["runtime.shard.dirty"] == 2
        assert snap["counters"]["runtime.shard.reused"] == 2
        assert snap["histograms"]["runtime.shard.parallel_ms"]["count"] == 2


class TestBatchAllocationEngine:
    def test_unknown_flow_raises(self):
        engine = BatchAllocationEngine(ContentionAnalysis(two_islands()))
        with pytest.raises(KeyError, match="unknown flows"):
            engine.register(["A", "nope"])

    def test_register_allocate_release_matches_monolithic(self):
        engine = BatchAllocationEngine(ContentionAnalysis(two_islands()))
        decisions = engine.register(["A", "B"])
        assert [d.action for d in decisions] == [ADMIT, ADMIT]
        rates = engine.allocate()
        assert rates == basic_fairness_lp_allocation(
            engine.active_analysis()
        ).shares
        assert engine.rate_of("A") == rates["A"]
        engine.release(["B"])
        rates = engine.allocate()
        assert set(rates) == {"A"}
        # Island A's component was untouched by the release: reused.
        assert engine.solver.last_stats["reused"] == 1
        assert engine.solver.last_stats["dirty"] == 0
        assert engine.rate_of("B") == 0.0

    def test_duplicate_and_active_ids_are_skipped(self):
        engine = BatchAllocationEngine(ContentionAnalysis(two_islands()))
        engine.register(["A"])
        decisions = engine.register(["A", "B", "B"])
        assert [d.flow_id for d in decisions] == ["B"]

    def test_infeasible_batch_falls_back_to_greedy_fifo(self):
        """A shortcut link gives flow L a 4-subflow clique (> its
        virtual length 3), so its basic floor is infeasible; the batch
        probe over {L, S} fails, the greedy FIFO rejects L and admits
        the 1-hop flow S, and the epoch still solves."""
        nodes = ["a0", "a1", "a2", "a3", "a4"]
        links = [("a0", "a1"), ("a1", "a2"), ("a2", "a3"),
                 ("a3", "a4"), ("a0", "a4")]
        scenario = Scenario(
            Network.from_links(nodes, links),
            [Flow("L", tuple(nodes), 1.0), Flow("S", ("a0", "a1"), 1.0)],
            name="shortcut-batch",
        )
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            engine = BatchAllocationEngine(ContentionAnalysis(scenario))
            decisions = engine.register(["L", "S"])
        finally:
            obs.set_registry(None)
        verdicts = {d.flow_id: d for d in decisions}
        assert verdicts["S"].action == ADMIT
        assert verdicts["L"].action != ADMIT
        assert verdicts["L"].reason == REASON_FLOOR
        counters = registry.snapshot()["counters"]
        assert counters["batch.register.greedy_fallbacks"] >= 1
        rates = engine.allocate()  # the admitted subset is solvable
        assert set(rates) == engine.active == {"S"}
        assert rates == basic_fairness_lp_allocation(
            engine.active_analysis()
        ).shares

    def test_admission_disabled_admits_everything(self):
        scenario = LIBRARY["fig3_shortcut"]()
        engine = BatchAllocationEngine(
            ContentionAnalysis(scenario), admission=False
        )
        decisions = engine.register(scenario.flow_ids)
        assert all(d.action == ADMIT for d in decisions)


class TestRuntimeShardSeam:
    @pytest.mark.parametrize("name", ["fig4", "parallel_chains", "grid"])
    def test_runtime_sharded_vs_monolithic_journal(self, name):
        """The seam's contract: identical committed journals with the
        sharded backend on or off."""
        scenario = LIBRARY[name]()
        ids = [f.flow_id for f in scenario.flows]

        def journal(sharded):
            runtime = AllocatorRuntime(
                scenario, RuntimeConfig(sharded=sharded)
            )
            runtime.set_active(ids)
            runtime.set_active(ids[1:])
            runtime.set_active(ids)
            return [r.to_dict() for r in runtime.journal]

        assert journal(True) == journal(False)

    def test_churn_one_island_resolves_only_dirty_components(self):
        runtime = AllocatorRuntime(
            two_islands(), RuntimeConfig(admission=False)
        )
        runtime.set_active(["A", "B"])
        assert runtime._shard.last_stats["dirty"] == 2
        runtime.set_active(["A"])  # island B departs; A is untouched
        assert runtime._shard.last_stats == {
            **runtime._shard.last_stats,
            "components": 1, "dirty": 0, "reused": 1,
        }

    def test_unchanged_epoch_counts_as_memo_hit(self):
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            runtime = AllocatorRuntime(
                two_islands(), RuntimeConfig(admission=False)
            )
            first = runtime.set_active(["A", "B"])
            again = runtime.set_active(["A", "B"])
        finally:
            obs.set_registry(None)
        assert again == first
        counters = registry.snapshot()["counters"]
        assert counters["runtime.alloc.memo_hits"] >= 1
        assert counters["runtime.shard.reused"] >= 2
