"""Edge-path tests across modules: small guards, error paths, aliases."""

import pytest

from repro.core import (
    ContentionAnalysis,
    Flow,
    Network,
    Scenario,
    basic_shares,
)
from repro.core.fairness_defs import naive_subflow_shares
from repro.lp import Constraint, LinearProgram, lexicographic_maxmin, solve
from repro.lp.problem import LPSolution
from repro.net.packet import DataPacket
from repro.sim import RngRegistry, Simulator
from repro.traffic import CbrSource


class TestConstraintHelpers:
    def test_evaluate_and_tightness(self):
        con = Constraint({"x": 2.0, "y": 1.0}, 5.0, label="c")
        assert con.evaluate({"x": 1.0, "y": 3.0}) == 5.0
        assert con.is_tight({"x": 1.0, "y": 3.0})
        assert not con.is_tight({"x": 0.0, "y": 0.0})
        assert con.satisfied_by({"x": 0.0})
        assert not con.satisfied_by({"x": 3.0})

    def test_missing_vars_default_zero(self):
        con = Constraint({"x": 1.0}, 1.0)
        assert con.evaluate({}) == 0.0


class TestLPSolution:
    def test_getitem_and_flags(self):
        sol = LPSolution("optimal", {"x": 2.0}, 2.0)
        assert sol["x"] == 2.0
        assert sol.is_optimal
        assert not LPSolution("infeasible", {}, float("nan")).is_optimal


class TestMaxminGuards:
    def test_unbounded_base_passthrough(self):
        lp = LinearProgram()
        lp.add_variable("x", objective_coeff=1.0)
        sol = lexicographic_maxmin(lp)
        assert sol.status == "unbounded"

    def test_single_variable(self):
        lp = LinearProgram()
        lp.add_variable("x", objective_coeff=1.0)
        lp.add_constraint({"x": 1.0}, 2.0)
        sol = lexicographic_maxmin(lp)
        assert sol["x"] == pytest.approx(2.0)


class TestSimplexRedundancy:
    def test_duplicate_equality_like_rows(self):
        """Redundant >= rows exercise the artificial-driving path."""
        lp = LinearProgram()
        lp.maximize({"x": 1.0, "y": 1.0})
        lp.add_constraint({"x": 1.0, "y": 1.0}, 2.0)
        lp.set_lower_bound("x", 1.0)
        lp.set_lower_bound("y", 1.0)
        # x = y = 1 is the unique feasible point.
        sol = solve(lp)
        assert sol.is_optimal
        assert sol["x"] == pytest.approx(1.0)
        assert sol["y"] == pytest.approx(1.0)


class TestShareGuards:
    def test_basic_shares_empty_rejected(self):
        with pytest.raises(ValueError):
            basic_shares([])

    def test_naive_shares_empty_rejected(self):
        with pytest.raises(ValueError):
            naive_subflow_shares([])


class TestRunTableAlias:
    def test_plain_2pa_alias(self):
        from repro.experiments import run_table
        from repro.scenarios import fig1

        table = run_table(fig1.make_scenario(), "t", ["2PA"],
                          duration=0.5)
        assert table.results[0].system == "2PA-C"


class TestCbrRestart:
    def test_source_restarts_after_stop(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, Flow("1", ["a", "b"]),
                        lambda p: got.append(sim.now) or True,
                        packets_per_second=100)
        src.start()
        sim.run_until(50_000)
        src.stop()
        sim.run_until(200_000)
        after_stop = len(got)
        src.start()
        sim.run_until(300_000)
        assert len(got) > after_stop

    def test_double_start_is_noop(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, Flow("1", ["a", "b"]),
                        lambda p: got.append(p) or True,
                        packets_per_second=100)
        src.start()
        src.start()
        sim.run_until(10_500)
        # 100 pkt/s -> ~1 packet in 10.5 ms, not 2.
        assert len(got) == 2  # t=0 and t=10ms


class TestVisualizeDegenerate:
    def test_single_point_topology(self):
        from repro.experiments import render_topology

        net = Network.from_positions({"a": (0, 0), "b": (100, 0)})
        scenario = Scenario(net, [Flow("1", ["a", "b"])])
        art = render_topology(scenario, width=20, height=4)
        assert "a" in art and "b" in art


class TestCaptureOnAbstractNetwork:
    def test_zero_distance_never_captures(self):
        """Explicit-link networks have no geometry: capture disabled
        gracefully (overlap garbles)."""
        from repro.mac.channel import WirelessChannel
        from repro.net.packet import Frame, FrameKind

        sim = Simulator()
        net = Network.from_links(["a", "b", "r"],
                                 [("a", "r"), ("b", "r")])

        class Rec:
            frames = []

            def on_medium_busy(self):
                pass

            def on_medium_idle(self):
                pass

            def on_frame(self, f):
                self.frames.append(f)

        chan = WirelessChannel(sim, net, capture_threshold_db=10.0)
        rec = Rec()
        chan.register("r", rec)
        chan.register("a", Rec())
        chan.register("b", Rec())
        chan.transmit("a", Frame(FrameKind.RTS, "a", "r", 100.0))
        chan.transmit("b", Frame(FrameKind.RTS, "b", "r", 100.0))
        sim.run()
        assert rec.frames == []


class TestDsrCacheReply:
    def test_intermediate_cache_answer(self):
        """A node holding a cached tail answers route discovery."""
        from repro.routing import DsrProtocol

        net = Network.from_positions({
            "s": (0, 0), "m": (200, 0), "d": (400, 0),
            "s2": (0, 200),
        })
        dsr = DsrProtocol(net)
        first = dsr.find_route("s", "d")
        assert first == ["s", "m", "d"]
        # s2 -> d: s2's neighbors include s and m (both within 250?).
        # s2-m distance = sqrt(200^2+200^2) = 283 > 250, so the flood
        # goes through s, which has (s, m, d) cached; its cache covers
        # routes *from s*, so the request continues and still succeeds.
        second = dsr.find_route("s2", "d")
        assert second is not None
        assert second[0] == "s2" and second[-1] == "d"


class TestPacketRouteIntegrity:
    def test_subflow_changes_with_hop(self):
        p = DataPacket("9", ("a", "b", "c", "d"), 512, 0.0, hop=1)
        assert str(p.subflow) == "F9.1"
        p.advance()
        assert str(p.subflow) == "F9.2"
        assert p.sender == "b" and p.receiver == "c"


class TestRngReproducibilityAcrossProcessBoundaries:
    def test_backoff_stream_values_pinned(self):
        """Stable-hash streams: pin actual values so accidental changes
        to the hashing/seed derivation are caught."""
        reg = RngRegistry(1)
        draws = [reg.uniform_slots(("backoff", "A"), 31)
                 for _ in range(5)]
        reg2 = RngRegistry(1)
        draws2 = [reg2.uniform_slots(("backoff", "A"), 31)
                  for _ in range(5)]
        assert draws == draws2
        assert len(set(draws)) > 1  # actually random
