"""Tests for the two-ray-ground PHY model (the paper's 250 m disc)."""

import math

import pytest

from repro.phy import (
    RadioParams,
    can_decode,
    can_sense,
    carrier_sense_range,
    crossover_distance,
    decode_range,
    friis,
    received_power,
    two_ray_ground,
)


class TestFriis:
    def test_inverse_square_law(self):
        p1 = friis(100.0)
        p2 = friis(200.0)
        assert p1 / p2 == pytest.approx(4.0)

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ValueError):
            friis(0.0)

    def test_gain_scaling(self):
        base = friis(100.0)
        boosted = friis(100.0, RadioParams(tx_gain=2.0))
        assert boosted == pytest.approx(2.0 * base)


class TestTwoRayGround:
    def test_crossover_value(self):
        # 4*pi*ht*hr/lambda with ht=hr=1.5 m at 914 MHz ~ 86.2 m
        assert crossover_distance() == pytest.approx(86.2, abs=0.5)

    def test_friis_below_crossover(self):
        d = 50.0
        assert two_ray_ground(d) == pytest.approx(friis(d))

    def test_fourth_power_law_beyond_crossover(self):
        p1 = two_ray_ground(200.0)
        p2 = two_ray_ground(400.0)
        assert p1 / p2 == pytest.approx(16.0)

    def test_continuity_at_regime_change(self):
        """No huge jump across the crossover (ns-2 models it this way)."""
        d = crossover_distance()
        below = two_ray_ground(d * 0.999)
        above = two_ray_ground(d * 1.001)
        assert below / above == pytest.approx(1.0, rel=0.2)

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ValueError):
            two_ray_ground(-5.0)


class TestRanges:
    def test_default_decode_range_is_250m(self):
        """ns-2's WaveLAN defaults give the paper's 250 m disc."""
        assert decode_range() == pytest.approx(250.0, abs=0.5)

    def test_default_cs_range_matches(self):
        """Paper sets interference range = transmission range."""
        assert carrier_sense_range() == pytest.approx(decode_range())

    def test_can_decode_thresholding(self):
        assert can_decode(249.0)
        assert not can_decode(251.0)

    def test_can_sense(self):
        assert can_sense(249.0)
        assert not can_sense(251.0)

    def test_lower_threshold_longer_range(self):
        params = RadioParams(rx_threshold=3.652e-10 / 16.0)
        assert decode_range(params) == pytest.approx(500.0, abs=1.0)

    def test_received_power_alias(self):
        assert received_power(120.0) == two_ray_ground(120.0)

    def test_friis_regime_inversion(self):
        """Thresholds high enough to land inside the crossover distance."""
        params = RadioParams(rx_threshold=friis(50.0))
        assert decode_range(params) == pytest.approx(50.0, rel=1e-6)
