"""CLI observability flags: --json golden output, --metrics-out, --profile.

``table1`` is fully analytic and deterministic, so its --json output acts
as a golden record: the distributed/centralized share vectors must match
the library API exactly, and the artifact must validate against the
run-artifact schema.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import run_table1
from repro.obs import RunArtifact, validate_artifact


def _run_cli(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestTable1Json:
    def test_golden_artifact(self, capsys):
        code, out = _run_cli(capsys, ["table1", "--json"])
        assert code == 0
        doc = json.loads(out)  # stdout is pure JSON
        validate_artifact(doc)
        assert doc["kind"] == "table1"
        assert doc["scenario"] == "fig6"
        assert doc["seed"] is None

        reference = run_table1()
        results = doc["results"]
        for fid, share in reference.distributed_shares.items():
            assert results["distributed_shares"][fid] == pytest.approx(share)
        for fid, share in reference.centralized_shares.items():
            assert results["centralized_shares"][fid] == pytest.approx(share)
        # Paper's printed values ride along for cross-PR diffing.
        assert results["paper_distributed"] == reference.paper_distributed
        # Convergence of the distributed protocol is part of the record.
        assert results["convergence"]["max_rounds"] >= 1
        assert results["convergence"]["total_messages"] >= 1
        # Phase timings for the analytic pipeline are present.
        timers = doc["metrics"]["timers"]
        assert "contention.clique_enumeration" in timers
        assert "lp.solve" in timers
        assert "2pad.propagate" in timers
        assert doc["metrics"]["counters"]["lp.solves"] >= 1
        assert doc["wall_time_s"] > 0

    def test_human_table_without_json(self, capsys):
        code, out = _run_cli(capsys, ["table1"])
        assert code == 0
        assert "Table I" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)

    def test_metrics_out_writes_artifact(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        code, out = _run_cli(capsys, ["table1", "--metrics-out", str(path)])
        assert code == 0
        assert "Table I" in out  # human table still printed
        art = RunArtifact.load(str(path))
        assert art.kind == "table1"
        validate_artifact(art.to_json_dict())

    def test_profile_prints_phases(self, capsys):
        code, out = _run_cli(capsys, ["table1", "--profile"])
        assert code == 0
        assert "== profile ==" in out
        assert "2pad.local_lp" in out
        assert "contention.clique_enumeration" in out


class TestTable2Json:
    @pytest.fixture(scope="class")
    def table2_run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "table2.json"
        code = main(["table2", "--duration", "0.3", "--json",
                     "--metrics-out", str(path)])
        return code, path

    def test_artifact_is_schema_valid(self, table2_run, capsys):
        code, path = table2_run
        assert code == 0
        art = RunArtifact.load(str(path))
        validate_artifact(art.to_json_dict())
        assert art.kind == "table2"
        assert art.scenario == "fig1"
        assert art.config["duration"] == 0.3

    def test_artifact_has_paper_quantities(self, table2_run):
        _, path = table2_run
        art = RunArtifact.load(str(path))
        systems = {s["system"]: s for s in art.results["systems"]}
        assert set(systems) == {"802.11", "two-tier", "2PA-C"}
        for record in systems.values():
            assert record["total_effective"] >= 0
            assert "loss_ratio" in record
            assert record["subflow_packets"]  # r_{i.j} T per subflow
        assert systems["2PA-C"]["allocation"] is not None

    def test_artifact_has_phase_timings_and_convergence(self, table2_run):
        _, path = table2_run
        art = RunArtifact.load(str(path))
        timers = art.metrics["timers"]
        for phase in ("contention.clique_enumeration", "lp.solve",
                      "sim.run", "sim.run_until"):
            assert phase in timers, f"missing phase {phase}"
            assert timers[phase]["calls"] >= 1
        conv = art.results["convergence_2pad"]
        assert conv["max_rounds"] >= 1
        assert conv["total_messages"] >= 1
        assert art.metrics["counters"]["sim.events"] > 0
        assert art.metrics["gauges"]["sim.events_per_sec"] > 0


class TestAblationJson:
    def test_analytic_ablation_json(self, capsys):
        # virtual-length is fully analytic, hence fast and deterministic.
        code, out = _run_cli(capsys, ["ablation", "virtual-length", "--json"])
        assert code == 0
        doc = json.loads(out)
        validate_artifact(doc)
        assert doc["kind"] == "ablation"
        assert doc["config"]["name"] == "virtual-length"
        assert doc["results"]["points"]


class TestVerifyCli:
    def test_json_artifact_with_verify_counters(self, capsys):
        code, out = _run_cli(capsys, ["verify", "--cases", "5", "--seed",
                                      "0", "--json"])
        assert code == 0
        doc = json.loads(out)
        validate_artifact(doc)
        assert doc["kind"] == "verify"
        assert doc["scenario"] == "random-fuzz"
        assert doc["seed"] == 0
        assert doc["config"] == {"cases": 5, "inject_fault": False,
                                 "faults": False, "churn": False,
                                 "backend": "simplex", "sharded": False,
                                 "overload": False}
        assert doc["results"]["ok"] is True
        assert doc["results"]["failures"] == []
        counters = doc["metrics"]["counters"]
        assert counters["verify.cases"] == 5
        assert counters["verify.cliques.brute_force.pass"] >= 1
        assert counters["verify.lp.float_vs_exact.pass"] == 5
        timers = doc["metrics"]["timers"]
        for phase in ("verify.case", "verify.cliques",
                      "verify.allocations", "verify.exact_lp",
                      "verify.2pad"):
            assert phase in timers, f"missing phase {phase}"

    def test_human_table(self, capsys):
        code, out = _run_cli(capsys, ["verify", "--cases", "2"])
        assert code == 0
        assert "repro verify: 2 case(s), seed 0" in out
        assert "all checks passed" in out

    def test_inject_fault_writes_reproducer_and_exits_zero(
        self, capsys, tmp_path
    ):
        # Exit 0: the harness is healthy exactly when the fault IS caught.
        code, out = _run_cli(capsys, [
            "verify", "--cases", "3", "--inject-fault",
            "--reproducer-dir", str(tmp_path),
        ])
        assert code == 0
        assert "[fault injected]" in out
        reproducers = list(tmp_path.glob("verify-reproducer-*.json"))
        assert reproducers
        doc = json.loads(reproducers[0].read_text())
        assert doc["kind"] == "repro.verify/reproducer"
        assert doc["check"] == "lp.clique_capacity"


class TestChurnCli:
    def test_json_artifact_with_runtime_counters(self, capsys):
        code, out = _run_cli(capsys, [
            "churn", "--cases", "2", "--epochs", "5",
            "--loss", "0,0.2", "--seed", "0", "--json",
        ])
        assert code == 0
        doc = json.loads(out)
        validate_artifact(doc)
        assert doc["kind"] == "churn"
        assert doc["scenario"] == "random-churn"
        assert doc["seed"] == 0
        assert doc["config"] == {
            "cases": 2, "loss_rates": [0.0, 0.2], "epochs": 5,
            "crash_prob": 0.0, "hysteresis": 0.3, "inject_fault": False,
            "jobs": 1,
        }
        results = doc["results"]
        assert results["ok"] is True
        assert results["violations"] == []
        assert results["epochs_run"] == 2 * 2 * 5
        assert results["checks"]["churn.crash_restore_identical"]["fail"] == 0
        counters = doc["metrics"]["counters"]
        assert counters["runtime.cases"] == 4
        assert counters["runtime.epoch.committed"] >= 20
        # The crash differential exercises the checkpoint store...
        assert counters["checkpoint.save"] >= 1
        assert counters["checkpoint.restore"] >= 1
        # ...and every arrival went through admission control.
        assert counters["admission.admit"] >= 1
        assert "runtime.epoch" in doc["metrics"]["timers"]

    def test_human_render(self, capsys):
        code, out = _run_cli(capsys, [
            "churn", "--cases", "1", "--epochs", "4", "--loss", "0",
        ])
        assert code == 0
        assert "all churn safety invariants held" in out

    def test_inject_fault_inverts_exit_code(self, capsys):
        code, out = _run_cli(capsys, [
            "churn", "--cases", "1", "--epochs", "4", "--loss", "0",
            "--inject-fault",
        ])
        assert code == 0  # healthy harness == fault caught


class TestTraceFlag:
    def test_trace_embedded_in_artifact(self, tmp_path, capsys):
        path = tmp_path / "t2.jsonl"
        code = main(["table2", "--duration", "0.1", "--trace", "app",
                     "--metrics-out", str(path)])
        capsys.readouterr()
        assert code == 0
        art = RunArtifact.load(str(path))
        assert art.trace, "expected app-category trace records"
        assert all(r["category"] == "app" for r in art.trace)
