"""Differential suite for the sparse revised-simplex backend.

Three-way agreement — revised vs dense simplex vs exact-``Fraction``
oracle — on every LP the reproduction generates: the full 12-scenario
library (all fig benchmarks included), the max-min-refined allocations,
and the degenerate corners (unbounded, infeasible, and the one-ulp
borderline instance the fuzzer checked into ``tests/regressions/``).
Statuses must agree *exactly*; optimal objectives and max-min-refined
rates within 1e-9.
"""

import json
from pathlib import Path

import pytest

from repro.core.allocation import (
    basic_fairness_lp_allocation,
    build_basic_fairness_lp,
)
from repro.core.contention import ContentionAnalysis
from repro.lp import (
    LinearProgram,
    RevisedBackend,
    lexicographic_maxmin,
    solve,
    solve_revised,
    solve_simplex,
)
from repro.obs.registry import using_registry
from repro.resilience import ResilientLPBackend
from repro.scenarios import (
    cross,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    grid_scenario,
    parallel_chains,
    star,
)
from repro.scenarios.io import scenario_from_dict
from repro.verify import lp_objective_matches, solve_exact

RATE_TOL = 1e-9

LIBRARY = {
    "fig1": fig1.make_scenario,
    "fig2_single": fig2.make_single_hop_scenario,
    "fig2_multi": fig2.make_multi_hop_scenario,
    "fig3_chain": fig3.make_chain_scenario,
    "fig3_shortcut": fig3.make_shortcut_scenario,
    "fig4": fig4.make_scenario,
    "fig5": fig5.make_scenario,
    "fig6": fig6.make_scenario,
    "parallel_chains": parallel_chains,
    "cross": cross,
    "grid": grid_scenario,
    "star": star,
}

BORDERLINE = (
    Path(__file__).parent / "regressions" / "data"
    / "verify-reproducer-s0-c27-lp.float_vs_exact.json"
)


def group_lps(scenario):
    analysis = ContentionAnalysis(scenario)
    return [
        build_basic_fairness_lp(analysis, group, scenario.capacity)
        for group in analysis.groups
    ]


class TestScenarioLibraryDifferential:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_group_lps_three_way_agreement(self, name):
        """Every Prop. 2 group LP: statuses exact, objectives <= 1e-9."""
        for lp in group_lps(LIBRARY[name]()):
            dense = solve_simplex(lp)
            revised = solve_revised(lp)
            exact = solve_exact(lp)
            assert revised.status == dense.status
            if dense.is_optimal:
                assert abs(revised.objective - dense.objective) <= RATE_TOL
                if exact.status == "optimal":
                    assert abs(
                        revised.objective - float(exact.objective)
                    ) <= RATE_TOL

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_revised_passes_the_float_vs_exact_oracle(self, name):
        """Zero oracle disagreements (incl. borderline classification)."""
        for lp in group_lps(LIBRARY[name]()):
            report = lp_objective_matches(lp, backend="revised")
            assert report["ok"], report
            assert report["backend"] == "revised"

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_maxmin_refined_rates_agree(self, name):
        """The paper-reported allocation: per-flow rates within 1e-9.

        Raw LP vertices may legitimately differ between backends on a
        degenerate optimal face; the lexicographic max-min refinement is
        what makes the allocation unique, so rate agreement is asserted
        after refinement — exactly what every experiment consumes.
        """
        analysis = ContentionAnalysis(LIBRARY[name]())
        try:
            dense = basic_fairness_lp_allocation(analysis, backend="simplex")
        except RuntimeError:
            # fig3's shortcut: the basic floors alone overfill the clique
            # (the paper's motivation for virtual lengths).  The revised
            # backend must reach the same infeasible verdict.
            with pytest.raises(RuntimeError):
                basic_fairness_lp_allocation(analysis, backend="revised")
            return
        revised = basic_fairness_lp_allocation(analysis, backend="revised")
        assert set(dense.shares) == set(revised.shares)
        for fid, rate in dense.shares.items():
            assert abs(revised.shares[fid] - rate) <= RATE_TOL, (
                name, fid, rate, revised.shares[fid],
            )


class TestDegenerateCases:
    def test_unbounded_status_exact(self):
        lp = LinearProgram()
        lp.maximize({"x": 1.0, "y": 1.0})
        lp.add_constraint({"x": 1.0}, 1.0)
        assert solve_revised(lp).status == "unbounded"
        assert solve_simplex(lp).status == "unbounded"
        assert solve_exact(lp).status == "unbounded"

    def test_infeasible_status_exact(self):
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.add_constraint({"x": -1.0}, -5.0)  # x >= 5
        lp.add_constraint({"x": 1.0}, 1.0)    # x <= 1
        assert solve_revised(lp).status == "infeasible"
        assert solve_simplex(lp).status == "infeasible"
        assert solve_exact(lp).status == "infeasible"

    def test_no_constraints_matches_dense(self):
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        assert solve_revised(lp).status == "unbounded"
        bounded = LinearProgram()
        bounded.add_variable("x")
        bounded.maximize({})
        assert solve_revised(bounded).status == \
            solve_simplex(bounded).status == "optimal"

    def test_empty_lp(self):
        lp = LinearProgram()
        assert solve_revised(lp).status == "optimal"
        assert solve_revised(lp).objective == 0.0

    def test_negative_shifted_rhs_needs_phase1(self):
        """Lower bounds exceeding slack force the phase-1 path."""
        lp = LinearProgram()
        lp.maximize({"a": 1.0})
        lp.add_variable("b")
        lp.set_lower_bound("b", 2.0)
        lp.add_constraint({"a": 1.0, "b": -1.0}, -1.0)  # a <= b - 1
        lp.add_constraint({"a": 1.0, "b": 1.0}, 10.0)
        dense = solve_simplex(lp)
        revised = solve_revised(lp)
        assert revised.status == dense.status == "optimal"
        assert revised.values == dense.values

    def test_one_ulp_borderline_statuses_match_dense(self):
        """The regression instance where float data is exactly infeasible
        by one ulp: the revised backend must report the same statuses as
        the dense solver on every group LP, and the oracle must classify
        the pair as (flagged) borderline agreement — not a mismatch."""
        doc = json.loads(BORDERLINE.read_text())
        scenario = scenario_from_dict(doc["scenario"])
        hit = False
        for lp in group_lps(scenario):
            assert solve_revised(lp).status == solve_simplex(lp).status
            report = lp_objective_matches(lp, backend="revised")
            assert report["ok"], report
            if report.get("borderline"):
                hit = True
                assert report["simplex_status"] == "optimal"
                assert report["exact_status"] == "infeasible"
        assert hit, "data file no longer pins the one-ulp artifact"


class TestWarmStartInterop:
    """Both backends share the structure-stable basis label encoding."""

    @staticmethod
    def _lp(cap=4.0, ycap=3.0):
        lp = LinearProgram()
        lp.maximize({"x": 1.0, "y": 2.0})
        lp.add_constraint({"x": 1.0, "y": 1.0}, cap)
        lp.add_constraint({"y": 1.0}, ycap)
        lp.set_lower_bound("x", 0.5)
        return lp

    def test_same_final_basis_and_values_cold(self):
        dense = solve_simplex(self._lp())
        revised = solve_revised(self._lp())
        assert revised.basis == dense.basis
        assert revised.values == dense.values

    def test_dense_basis_warm_starts_revised(self):
        dense = solve_simplex(self._lp())
        with using_registry() as reg:
            warm = solve_revised(self._lp(5.0, 2.5),
                                 start_basis=dense.basis)
        cold = solve_revised(self._lp(5.0, 2.5))
        assert warm.values == cold.values
        assert warm.objective == cold.objective
        assert reg.counters["perf.lp.warm.installed"].value == 1

    def test_revised_basis_warm_starts_dense(self):
        revised = solve_revised(self._lp())
        warm = solve_simplex(self._lp(5.0, 2.5),
                             start_basis=revised.basis)
        cold = solve_simplex(self._lp(5.0, 2.5))
        assert warm.values == cold.values

    def test_stale_basis_falls_back_with_same_reasons(self):
        cases = [
            ((("v", 0),), "row-count"),
            ((("v", 17), ("s", 0)), "unknown-label"),
            ((("v", 0), ("v", 0)), "duplicate-column"),
        ]
        for stale, reason in cases:
            with using_registry() as reg:
                warm = solve_revised(self._lp(), start_basis=stale)
            cold = solve_revised(self._lp())
            assert warm.values == cold.values
            key = f"lp.warm.stale_basis.{reason}"
            assert reg.counters[key].value == 1, reason


class TestBatchedProbes:
    """probe_max_values == one solve per target, same verdicts."""

    @staticmethod
    def _region():
        lp = LinearProgram()
        for v in ("x", "y", "z"):
            lp.add_variable(v)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 4.0)
        lp.add_constraint({"y": 1.0, "z": 1.0}, 3.0)
        lp.add_constraint({"x": 1.0, "z": 2.0}, 5.0)
        return lp

    def test_batch_equals_per_probe_loop(self):
        lp = self._region()
        batch = RevisedBackend().probe_max_values(lp, ["x", "y", "z"])
        for target, peak in batch.items():
            probe = lp.clone()
            probe.objective = {target: 1.0}
            sol = solve_revised(probe)
            assert sol.is_optimal and peak is not None
            assert abs(peak - sol.values[target]) <= RATE_TOL

    def test_unbounded_probe_returns_none(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("free")
        lp.add_constraint({"x": 1.0}, 1.0)
        out = RevisedBackend().probe_max_values(lp, ["x", "free"])
        assert out["free"] is None
        assert abs(out["x"] - 1.0) <= RATE_TOL

    def test_infeasible_region_every_probe_none(self):
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.set_lower_bound("x", 5.0)
        lp.add_constraint({"x": 1.0}, 2.0)
        out = RevisedBackend().probe_max_values(lp, ["x"])
        assert out == {"x": None}

    def test_empty_targets(self):
        assert RevisedBackend().probe_max_values(self._region(), []) == {}

    def test_maxmin_with_and_without_batching_agree(self):
        """The ladder run through batched probes (revised) matches the
        per-probe loop (dense) variable by variable."""
        lp = self._region()
        lp.objective = {"x": 1.0, "y": 1.0, "z": 1.0}
        dense = lexicographic_maxmin(lp, backend="simplex")
        revised = lexicographic_maxmin(lp, backend="revised")
        assert revised.status == dense.status == "optimal"
        for v in dense.values:
            assert abs(revised.values[v] - dense.values[v]) <= RATE_TOL


class TestResilientChainRevised:
    def test_revised_backend_chain_serves_warm(self):
        backend = ResilientLPBackend(backend="revised")
        analysis = ContentionAnalysis(fig6.make_scenario())
        alloc = basic_fairness_lp_allocation(analysis, backend=backend)
        ref = basic_fairness_lp_allocation(analysis, backend="revised")
        for fid, rate in ref.shares.items():
            assert abs(alloc.shares[fid] - rate) <= RATE_TOL
        assert backend.served["warm"] > 0
        assert backend.fallbacks == 0

    def test_forced_demotion_reaches_cold_then_exact(self, monkeypatch):
        def boom(lp, start_basis=None):
            raise RuntimeError("forced failure")

        monkeypatch.setattr("repro.resilience.degrade.solve_revised", boom)
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.add_constraint({"x": 1.0}, 2.0)
        backend = ResilientLPBackend(backend="revised")
        solution = backend(lp)
        assert solution.is_optimal
        assert abs(solution.values["x"] - 2.0) <= RATE_TOL
        assert backend.served["exact"] == 1
        assert backend.fallbacks == 2  # warm and cold both demoted

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ResilientLPBackend(backend="no-such-solver")


class TestSolverFrontend:
    def test_registered_backend_name(self):
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.add_constraint({"x": 1.0}, 1.5)
        with using_registry() as reg:
            sol = solve(lp, "revised")
        assert sol.is_optimal
        assert reg.counters["lp.solves.revised"].value == 1
        assert reg.counters["lp.revised.solves"].value == 1
