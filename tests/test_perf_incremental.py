"""IncrementalContention vs cold rebuilds: bit-identical analyses and
allocations across flow churn, plus the dynamic experiment fast path."""

import pytest

from repro.core.allocation import basic_fairness_lp_allocation
from repro.core.contention import ContentionAnalysis
from repro.core.distributed import DistributedAllocator
from repro.core.model import Flow, Scenario
from repro.experiments import DynamicAllocationExperiment, FlowSchedule
from repro.obs.registry import using_registry
from repro.perf.incremental import IncrementalContention
from repro.scenarios import fig1
from repro.scenarios.random_topology import (
    random_connected_network,
    random_flows,
)


@pytest.fixture(scope="module")
def scenario():
    net = random_connected_network(20, seed=3)
    flows = random_flows(net, 6, seed=4)
    return Scenario(net, flows, name="churn", capacity=1.0)


def cold_analysis(scenario, active_ids):
    active = set(active_ids)
    sub = Scenario(
        scenario.network,
        [f for f in scenario.flows if f.flow_id in active],
        name=f"{scenario.name}-active",
        capacity=scenario.capacity,
    )
    return ContentionAnalysis(sub)


def assert_same_analysis(cold, fast):
    assert cold.cliques == fast.cliques
    assert cold.graph.vertices() == fast.graph.vertices()
    assert sorted(map(repr, cold.graph.edges())) == \
        sorted(map(repr, fast.graph.edges()))
    assert [[f.flow_id for f in g] for g in cold.groups] == \
        [[f.flow_id for f in g] for g in fast.groups]
    assert cold.scenario.flow_ids == fast.scenario.flow_ids


class TestChurnEquality:
    def test_analysis_matches_cold_across_churn(self, scenario):
        ids = scenario.flow_ids
        sequence = [
            ids,
            [i for i in ids if i != ids[2]],
            [i for i in ids if i not in (ids[2], ids[4])],
            [i for i in ids if i != ids[4]],
            [ids[0]],
            ids,
        ]
        inc = IncrementalContention(scenario)
        for active in sequence:
            fast = inc.analysis_for(active)
            assert_same_analysis(cold_analysis(scenario, active), fast)

    def test_allocations_match_cold(self, scenario):
        ids = scenario.flow_ids
        inc = IncrementalContention(scenario)
        for active in (ids, ids[:3], ids[1:]):
            cold = basic_fairness_lp_allocation(
                cold_analysis(scenario, active)
            )
            fast = basic_fairness_lp_allocation(inc.analysis_for(active))
            assert cold.shares == fast.shares

    def test_component_cache_hits_on_revisit(self, scenario):
        ids = scenario.flow_ids
        inc = IncrementalContention(scenario)
        with using_registry() as reg:
            inc.analysis_for(ids)
            inc.analysis_for(ids)  # same active set: all components cached
        assert reg.counters["perf.incremental.component_hits"].value > 0

    def test_add_and_remove_flow_api(self, scenario):
        ids = scenario.flow_ids
        inc = IncrementalContention(scenario, active=ids[:2])
        inc.add_flow(ids[3])
        inc.remove_flow(ids[0])
        expected = [i for i in ids if i in {ids[1], ids[3]}]
        assert inc.active_ids == expected
        assert_same_analysis(
            cold_analysis(scenario, expected), inc.analysis()
        )

    def test_register_genuinely_new_flow(self):
        scenario = fig1.make_scenario()
        inc = IncrementalContention(scenario)
        path = scenario.flows[0].path[:2]  # reuse an existing hop
        newcomer = Flow("99", list(path), 1.0)
        inc.add_flow(newcomer)
        augmented = Scenario(
            scenario.network,
            list(scenario.flows) + [newcomer],
            name=f"{scenario.name}-active",
            capacity=scenario.capacity,
        )
        assert_same_analysis(
            ContentionAnalysis(augmented), inc.analysis()
        )

    def test_unknown_flow_rejected(self, scenario):
        inc = IncrementalContention(scenario)
        with pytest.raises(KeyError):
            inc.add_flow("nope")
        with pytest.raises(KeyError):
            inc.set_active(["nope"])


class TestDistributedPrecomputedAnalysis:
    def test_precomputed_analysis_matches(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        a = DistributedAllocator(scenario).run()
        b = DistributedAllocator(scenario, analysis=analysis).run()
        assert a.shares == b.shares


class TestDynamicExperimentFastPath:
    def test_snapshots_bit_identical_to_cold_path(self):
        scenario = fig1.make_scenario()
        schedules = [
            FlowSchedule("1", start=0.0),
            FlowSchedule("2", start=1.0, end=3.0),
        ]

        def run(incremental, warm_lp):
            exp = DynamicAllocationExperiment(
                scenario, schedules, seed=5,
                incremental=incremental, warm_lp=warm_lp,
            )
            return exp.run(seconds=4.0)

        fast = run(True, True)
        cold = run(False, False)
        assert len(fast) == len(cold)
        for a, b in zip(fast, cold):
            assert a.allocated == b.allocated
            assert a.active_flows == b.active_flows
            assert a.delivered == b.delivered
