"""Tests for the simulated max-min baseline system."""

import pytest

from repro.core.model import SubflowId
from repro.experiments import run_table
from repro.sched import build_maxmin
from repro.scenarios import fig1


class TestBuildMaxmin:
    @pytest.fixture(scope="class")
    def build(self):
        return build_maxmin(fig1.make_scenario(), seed=1)

    def test_subflow_shares_from_progressive_filling(self, build):
        assert build.subflow_shares[SubflowId("1", 1)] == pytest.approx(
            2 / 3
        )
        assert build.subflow_shares[SubflowId("1", 2)] == pytest.approx(
            1 / 3
        )

    def test_allocation_records_end_to_end_min(self, build):
        assert build.allocation.share("1") == pytest.approx(1 / 3)
        assert build.allocation.share("2") == pytest.approx(1 / 3)

    def test_name(self, build):
        assert build.name == "maxmin"


class TestMaxminSimulation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table(
            fig1.make_scenario(), "mm", ["maxmin", "2PA-C"],
            duration=6.0, seed=2,
        )

    def test_maxmin_imbalance_shows_up(self, table):
        col = table.column("maxmin")
        up = col.subflow_packets[SubflowId("1", 1)]
        down = col.subflow_packets[SubflowId("1", 2)]
        # 2:1 target imbalance; relay drops follow.
        assert up / down == pytest.approx(2.0, rel=0.3)
        assert col.lost > 50

    def test_2pa_strictly_better(self, table):
        mm = table.column("maxmin")
        tpa = table.column("2PA-C")
        assert tpa.total_effective > mm.total_effective
        assert tpa.loss_ratio < 0.25 * mm.loss_ratio
