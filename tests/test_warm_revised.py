"""WarmLPCache x revised backend.

The cache stores structure-stable bases; this suite proves the revised
backend slots in as its solver without weakening any warm-start
guarantee: warm == cold *bitwise* on the churn re-solve timeline,
stale-basis fallbacks stay reason-tagged on counters/events, and every
``lp.solve`` span now says which backend produced it.
"""

import pytest

from repro import obs
from repro.core.allocation import basic_fairness_lp_allocation
from repro.core.contention import ContentionAnalysis
from repro.core.model import Scenario
from repro.lp import LinearProgram, solve_revised, solve_simplex
from repro.obs import using_event_bus, using_registry, using_tracer
from repro.perf.warm import WarmLPCache
from repro.scenarios.random_topology import (
    random_connected_network,
    random_flows,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    prev_reg = obs.get_registry()
    prev_tracer = obs.get_tracer()
    prev_bus = obs.get_event_bus()
    obs.set_registry(None)
    obs.set_tracer(None)
    obs.set_event_bus(None)
    yield
    obs.set_registry(prev_reg)
    obs.set_tracer(prev_tracer)
    obs.set_event_bus(prev_bus)


def sample_lp(cap=4.0, ycap=3.0):
    lp = LinearProgram()
    lp.maximize({"x": 1.0, "y": 2.0})
    lp.add_constraint({"x": 1.0, "y": 1.0}, cap)
    lp.add_constraint({"y": 1.0}, ycap)
    lp.set_lower_bound("x", 0.5)
    return lp


def churn_scenario(seed=3):
    net = random_connected_network(20, seed=seed)
    flows = random_flows(net, 6, seed=seed + 1)
    return Scenario(net, flows, name="churn", capacity=1.0)


def churn_sequence(scenario):
    ids = scenario.flow_ids
    return [
        ids,
        [i for i in ids if i != ids[2]],
        [i for i in ids if i not in (ids[2], ids[4])],
        [i for i in ids if i != ids[4]],
        ids,
    ]


class TestCacheWithRevisedSolver:
    def test_churn_timeline_warm_equals_cold_bitwise(self):
        """The acceptance sequence of the dynamic experiment, solved by
        the revised backend through the cache: every re-solve must be
        bitwise identical to a cold revised solve."""
        scenario = churn_scenario()
        cache = WarmLPCache(solve_fn=solve_revised)
        for active in churn_sequence(scenario):
            sub = Scenario(
                scenario.network,
                [f for f in scenario.flows if f.flow_id in set(active)],
                name="churn-active", capacity=scenario.capacity,
            )
            analysis = ContentionAnalysis(sub)
            cold = basic_fairness_lp_allocation(analysis,
                                                backend="revised")
            warm = basic_fairness_lp_allocation(
                analysis, backend=cache.solver
            )
            assert warm.shares == cold.shares  # bitwise, not approx
            assert warm.lp_solution.status == cold.lp_solution.status
        assert cache.hits > 0

    def test_cache_hit_installs_basis_into_revised(self):
        cache = WarmLPCache(solve_fn=solve_revised)
        cache.solver(sample_lp())
        with using_registry() as reg:
            sol = cache.solver(sample_lp(5.0, 2.5))  # structural sibling
        assert sol.is_optimal
        assert cache.hits == 1
        assert reg.counters["perf.lp.warm.attempts"].value == 1
        assert reg.counters["perf.lp.warm.installed"].value == 1
        assert reg.counters["lp.revised.solves"].value == 1

    def test_default_cache_still_uses_dense_solver(self):
        with using_registry() as reg:
            WarmLPCache().solver(sample_lp())
        assert "lp.revised.solves" not in reg.counters


class TestStaleBasisAttribution:
    def test_reason_tagged_counters_and_event_span(self):
        stale = (("s", 0), ("s", 1), ("s", 2))  # wrong row count
        with using_registry() as reg:
            with using_tracer() as tracer:
                with using_event_bus() as bus:
                    sol = solve_revised(sample_lp(), start_basis=stale)
        assert sol.is_optimal
        assert reg.counters["lp.warm.stale_basis"].value == 1
        assert reg.counters["lp.warm.stale_basis.row-count"].value == 1
        solve = next(r for r in tracer.to_records()
                     if r["name"] == "lp.solve")
        assert solve["tags"]["warm"] is True
        assert solve["tags"]["stale_basis"] == "row-count"
        (event,) = [e for e in bus.pending
                    if e["kind"] == "lp.warm.stale_basis"]
        assert event["span"] == solve["span"]
        assert event["reason"] == "row-count"

    def test_singular_basis_reason(self):
        """Structurally plausible labels whose columns are linearly
        dependent: the factorization must reject them, tagged
        ``singular``, and the solve still lands on the cold answer."""
        lp = LinearProgram()
        lp.maximize({"x": 1.0, "y": 1.0})
        lp.add_constraint({"x": 1.0, "y": 1.0}, 4.0)
        lp.add_constraint({"x": 2.0, "y": 2.0}, 8.0)  # dependent row
        cold = solve_revised(lp)
        with using_registry() as reg:
            warm = solve_revised(lp, start_basis=(("v", 0), ("v", 1)))
        assert warm.values == cold.values
        assert reg.counters["lp.warm.stale_basis.singular"].value == 1

    def test_infeasible_point_reason(self):
        """A nonsingular basis whose basic solution leaves the positive
        orthant is rejected, not used as an infeasible starting vertex.
        With x >= 2 as a surplus row, the basis {g0, s1} solves
        g0 = -2 < 0."""
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.add_constraint({"x": -1.0}, -2.0)  # x >= 2 (surplus row)
        lp.add_constraint({"x": 1.0}, 10.0)
        cold = solve_revised(lp)
        assert cold.is_optimal
        with using_registry() as reg:
            warm = solve_revised(lp, start_basis=(("g", 0), ("s", 1)))
        assert warm.values == cold.values
        key = "lp.warm.stale_basis.infeasible-point"
        assert reg.counters[key].value == 1


class TestBackendSpanTag:
    @staticmethod
    def _solve_span(tracer):
        return next(r for r in tracer.to_records()
                    if r["name"] == "lp.solve")

    def test_revised_solve_span_tagged(self):
        with using_tracer() as tracer:
            solve_revised(sample_lp())
        assert self._solve_span(tracer)["tags"]["backend"] == "revised"

    def test_dense_solve_span_tagged(self):
        with using_tracer() as tracer:
            solve_simplex(sample_lp())
        assert self._solve_span(tracer)["tags"]["backend"] == "simplex"

    def test_cache_solver_span_carries_backend(self):
        cache = WarmLPCache(solve_fn=solve_revised)
        with using_tracer() as tracer:
            cache.solver(sample_lp())
        assert self._solve_span(tracer)["tags"]["backend"] == "revised"
