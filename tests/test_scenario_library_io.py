"""Tests for the topology library and scenario serialization."""

import json

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    fairness_constrained_allocation,
)
from repro.scenarios import (
    cross,
    fig1,
    fig4,
    grid_scenario,
    load_scenario,
    parallel_chains,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    star,
)


class TestParallelChains:
    def test_ladder_contention(self):
        scenario = parallel_chains(2, 2)
        analysis = ContentionAnalysis(scenario)
        assert len(analysis.groups) == 1  # chains are coupled

    def test_wide_gap_decouples(self):
        scenario = parallel_chains(2, 2, chain_gap=320.0)
        analysis = ContentionAnalysis(scenario)
        assert len(analysis.groups) == 2
        alloc = basic_fairness_lp_allocation(analysis)
        assert alloc.share("1") == pytest.approx(0.5)

    def test_no_shortcuts(self):
        scenario = parallel_chains(3, 4)
        for flow in scenario.flows:
            assert not scenario.network.has_shortcut(flow)

    def test_weights_applied(self):
        scenario = parallel_chains(2, 1, weights=[1.0, 3.0])
        assert scenario.flow("2").weight == 3.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            parallel_chains(0, 2)


class TestCross:
    def test_paths_share_the_center(self):
        scenario = cross(2)
        assert "center" in scenario.flow("1").path
        assert "center" in scenario.flow("2").path
        assert scenario.flow("1").length == 4

    def test_flows_contend(self):
        analysis = ContentionAnalysis(cross(2))
        assert len(analysis.groups) == 1

    def test_symmetric_allocation(self):
        analysis = ContentionAnalysis(cross(2))
        alloc = basic_fairness_lp_allocation(analysis)
        assert alloc.share("1") == pytest.approx(alloc.share("2"))

    def test_invalid(self):
        with pytest.raises(ValueError):
            cross(0)


class TestGridAndStar:
    def test_grid_flows_are_shortest(self):
        from repro.routing import is_shortest

        scenario = grid_scenario(4)
        for flow in scenario.flows:
            assert is_shortest(scenario.network, flow)

    def test_grid_custom_pairs(self):
        scenario = grid_scenario(3, flow_pairs=[("g00", "g22")])
        assert len(scenario.flows) == 1
        assert scenario.flows[0].length == 4

    def test_grid_too_small(self):
        with pytest.raises(ValueError):
            grid_scenario(1)

    def test_star_is_weighted_fair_queueing(self):
        scenario = star(3, weights=[1.0, 2.0, 3.0])
        analysis = ContentionAnalysis(scenario)
        alloc = fairness_constrained_allocation(analysis)
        assert alloc.share("1") == pytest.approx(1 / 6)
        assert alloc.share("2") == pytest.approx(1 / 3)
        assert alloc.share("3") == pytest.approx(1 / 2)

    def test_star_radius_limit(self):
        with pytest.raises(ValueError):
            star(3, radius=300.0)


class TestSerialization:
    def test_geometric_round_trip(self):
        scenario = fig1.make_scenario()
        data = scenario_to_dict(scenario)
        clone = scenario_from_dict(data)
        assert clone.flow_ids == scenario.flow_ids
        assert clone.network.positions == scenario.network.positions
        assert clone.capacity == scenario.capacity
        # Same analysis results.
        a = basic_fairness_lp_allocation(ContentionAnalysis(scenario))
        b = basic_fairness_lp_allocation(ContentionAnalysis(clone))
        assert a.shares == pytest.approx(b.shares)

    def test_abstract_links_round_trip(self):
        scenario = fig4.make_scenario()
        clone = scenario_from_dict(scenario_to_dict(scenario))
        assert clone.network.explicit_links == (
            scenario.network.explicit_links
        )
        assert [f.weight for f in clone.flows] == [1.0, 2.0, 3.0, 2.0]

    def test_json_file_round_trip(self, tmp_path):
        scenario = cross(2)
        path = tmp_path / "cross.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.name == scenario.name
        assert loaded.flow_ids == scenario.flow_ids
        # File is real JSON.
        json.loads(path.read_text())

    def test_dict_is_json_compatible(self):
        data = scenario_to_dict(fig1.make_scenario())
        json.dumps(data)

    def test_missing_network_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"flows": [{"id": "1",
                                           "path": ["a", "b"]}]})

    def test_missing_flows_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"positions": {"a": [0, 0]}})

    def test_weight_defaults_to_one(self):
        data = {
            "positions": {"a": [0, 0], "b": [100, 0]},
            "flows": [{"id": "1", "path": ["a", "b"]}],
        }
        assert scenario_from_dict(data).flows[0].weight == 1.0
