"""Tests for the flow/network data model."""

import pytest

from repro.core import Flow, Network, Scenario, SubflowId, virtual_length


def line_network(n=4, spacing=200.0):
    return Network.from_positions(
        {f"n{i}": (i * spacing, 0.0) for i in range(n)}
    )


class TestVirtualLength:
    @pytest.mark.parametrize("l,v", [(0, 0), (1, 1), (2, 2), (3, 3),
                                     (4, 3), (10, 3)])
    def test_cap_at_three(self, l, v):
        assert virtual_length(l) == v

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            virtual_length(-1)


class TestFlow:
    def test_basic_properties(self):
        flow = Flow("1", ["a", "b", "c"], 2.0)
        assert flow.source == "a"
        assert flow.destination == "c"
        assert flow.length == 2
        assert flow.virtual_length == 2
        assert flow.weight == 2.0

    def test_subflows(self):
        flow = Flow("7", ["a", "b", "c"])
        subs = flow.subflows
        assert [s.sid for s in subs] == [SubflowId("7", 1),
                                         SubflowId("7", 2)]
        assert subs[0].sender == "a" and subs[0].receiver == "b"
        assert subs[1].sender == "b" and subs[1].receiver == "c"
        assert all(s.weight == 1.0 for s in subs)

    def test_subflow_accessor(self):
        flow = Flow("1", ["a", "b", "c"])
        assert flow.subflow(2).sender == "b"
        with pytest.raises(IndexError):
            flow.subflow(3)
        with pytest.raises(IndexError):
            flow.subflow(0)

    def test_too_short_path(self):
        with pytest.raises(ValueError):
            Flow("1", ["a"])

    def test_repeated_node_rejected(self):
        with pytest.raises(ValueError):
            Flow("1", ["a", "b", "a"])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Flow("1", ["a", "b"], weight=0.0)

    def test_subflow_id_ordering_and_str(self):
        assert SubflowId("1", 1) < SubflowId("1", 2) < SubflowId("2", 1)
        assert str(SubflowId("3", 2)) == "F3.2"


class TestNetwork:
    def test_distance_and_range(self):
        net = line_network()
        assert net.distance("n0", "n1") == pytest.approx(200.0)
        assert net.in_range("n0", "n1")
        assert not net.in_range("n0", "n2")  # 400 m > 250 m

    def test_neighbors(self):
        net = line_network()
        assert set(net.neighbors("n1")) == {"n0", "n2"}

    def test_links_each_once(self):
        net = line_network(3)
        assert sorted(tuple(sorted(l)) for l in net.links()) == [
            ("n0", "n1"), ("n1", "n2")
        ]

    def test_duplicate_node_rejected(self):
        net = line_network()
        with pytest.raises(ValueError):
            net.add_node("n0", 0, 0)

    def test_explicit_links(self):
        net = Network.from_links(["a", "b", "c"], [("a", "b")])
        assert net.in_range("a", "b")
        assert not net.in_range("a", "c")

    def test_explicit_links_unknown_node(self):
        with pytest.raises(ValueError):
            Network.from_links(["a"], [("a", "zz")])

    def test_validate_flow_range(self):
        net = line_network()
        net.validate_flow(Flow("1", ["n0", "n1", "n2"]))
        with pytest.raises(ValueError):
            net.validate_flow(Flow("2", ["n0", "n2"]))  # out of range

    def test_validate_flow_unknown_node(self):
        net = line_network()
        with pytest.raises(ValueError):
            net.validate_flow(Flow("1", ["n0", "zz"]))

    def test_shortcut_detection(self):
        net = line_network()  # spacing 200 -> no shortcuts
        assert not net.has_shortcut(Flow("1", ["n0", "n1", "n2", "n3"]))
        tight = Network.from_positions(
            {"a": (0, 0), "b": (100, 0), "c": (200, 0)}
        )
        assert tight.has_shortcut(Flow("1", ["a", "b", "c"]))


class TestScenario:
    def test_accessors(self):
        net = line_network()
        scenario = Scenario(net, [Flow("1", ["n0", "n1"]),
                                  Flow("2", ["n2", "n3"])], name="t")
        assert scenario.flow_ids == ["1", "2"]
        assert scenario.flow("2").source == "n2"
        assert len(scenario.all_subflows()) == 2
        assert scenario.weights() == {"1": 1.0, "2": 1.0}
        assert scenario.virtual_lengths() == {"1": 1, "2": 1}

    def test_duplicate_flow_ids_rejected(self):
        net = line_network()
        with pytest.raises(ValueError):
            Scenario(net, [Flow("1", ["n0", "n1"]),
                           Flow("1", ["n2", "n3"])])

    def test_invalid_flow_rejected_at_construction(self):
        net = line_network()
        with pytest.raises(ValueError):
            Scenario(net, [Flow("1", ["n0", "n3"])])

    def test_unknown_flow_lookup(self):
        net = line_network()
        scenario = Scenario(net, [Flow("1", ["n0", "n1"])])
        with pytest.raises(KeyError):
            scenario.flow("9")
