"""Tests for delay accounting and the windowed throughput series."""

import pytest

from repro.core.model import SubflowId
from repro.metrics import MetricsCollector
from repro.metrics.timeseries import ThroughputSeries
from repro.net.packet import DataPacket
from repro.scenarios import fig1
from repro.sched.runner import SimulationRun
from repro.sched.systems import build_2pa


class TestThroughputSeries:
    def test_binning(self):
        series = ThroughputSeries(window_seconds=1.0)
        series.record("1", 100.0)          # window 0
        series.record("1", 999_999.0)      # window 0
        series.record("1", 1_000_001.0)    # window 1
        assert series.counts["1"] == [2, 1]
        assert series.rates("1") == [2.0, 1.0]
        assert series.num_windows() == 2

    def test_window_ratio(self):
        series = ThroughputSeries(1.0)
        for _ in range(4):
            series.record("a", 500.0)
        for _ in range(2):
            series.record("b", 500.0)
        assert series.window_ratio("a", "b", 0) == 2.0
        assert series.window_ratio("a", "b", 5) is None

    def test_convergence_window(self):
        series = ThroughputSeries(1.0)
        # Window 0: 1:1 (not converged for 2:1 targets); windows 1-3: 2:1.
        data = {"a": [10, 20, 20, 20], "b": [10, 10, 10, 10]}
        for fid, windows in data.items():
            for w, count in enumerate(windows):
                for _ in range(count):
                    series.record(fid, w * 1e6 + 1)
        k = series.convergence_window({"a": 0.5, "b": 0.25},
                                      tolerance=0.1, settle=2)
        assert k == 1

    def test_never_converges(self):
        series = ThroughputSeries(1.0)
        for w in range(3):
            series.record("a", w * 1e6 + 1)
            series.record("b", w * 1e6 + 1)
        assert series.convergence_window(
            {"a": 0.5, "b": 0.1}, tolerance=0.05
        ) is None


class TestDelayAccounting:
    def test_delay_recorded_at_destination_only(self):
        metrics = MetricsCollector(fig1.make_scenario())
        path = tuple(fig1.make_scenario().flow("1").path)
        p1 = DataPacket("1", path, 512, created_at=100.0, hop=1)
        metrics.record_hop_delivery(p1, now=500.0)  # mid-path: no delay
        assert metrics.flows["1"].delay_sum_us == 0.0
        p2 = DataPacket("1", path, 512, created_at=100.0, hop=2)
        metrics.record_hop_delivery(p2, now=600.0)
        assert metrics.flows["1"].mean_delay_us == pytest.approx(500.0)
        assert metrics.flows["1"].delay_max_us == pytest.approx(500.0)

    def test_mean_of_several(self):
        metrics = MetricsCollector(fig1.make_scenario())
        path = tuple(fig1.make_scenario().flow("1").path)
        for created, now in ((0.0, 100.0), (0.0, 300.0)):
            p = DataPacket("1", path, 512, created_at=created, hop=2)
            metrics.record_hop_delivery(p, now=now)
        assert metrics.flows["1"].mean_delay_us == pytest.approx(200.0)

    def test_no_deliveries_zero_delay(self):
        metrics = MetricsCollector(fig1.make_scenario())
        assert metrics.flows["1"].mean_delay_us == 0.0


class TestEndToEndSeries:
    def test_simulation_produces_series_and_delays(self):
        scenario = fig1.make_scenario()
        from repro.mac.policies import DcfPolicy

        run = SimulationRun(
            scenario, lambda n, t: DcfPolicy(n, t), seed=1,
            series_window_seconds=1.0,
        )
        metrics = run.run(seconds=3.0)
        assert metrics.series is not None
        assert metrics.series.num_windows() >= 3
        delivered_via_series = sum(
            sum(s) for s in metrics.series.counts.values()
        )
        assert delivered_via_series == (
            metrics.total_effective_throughput_packets()
        )
        # Queueing at a saturated source means delays are substantial.
        assert metrics.flows["2"].mean_delay_us > 1000.0

    def test_2pa_ratio_converges_on_fig1(self):
        """Windowed rates reach the 2:1 allocation within a few seconds."""
        scenario = fig1.make_scenario()
        build = build_2pa(scenario, "centralized", seed=1)
        # Rebuild with a series-enabled runner.
        from repro.sched.runner import SimulationRun
        from repro.mac.policies import FairBackoffPolicy
        from repro.sched.runner import subflow_shares_by_node

        per_node = subflow_shares_by_node(scenario, build.subflow_shares)
        run = SimulationRun(
            scenario,
            lambda n, t: FairBackoffPolicy(n, t, per_node.get(n, {}),
                                           alpha=0.001),
            seed=1, series_window_seconds=2.0,
        )
        metrics = run.run(seconds=10.0)
        k = metrics.series.convergence_window(
            {"1": 0.5, "2": 0.25}, tolerance=0.35, settle=2
        )
        assert k is not None and k <= 3
