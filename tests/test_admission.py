"""Admission control: the Sec. II-D predicate and the queue controller.

The predicate (:func:`basic_share_feasible`) is Eq. (6) evaluated with
every flow at its basic share; the paper proves it holds for shortcut-
free flow groups, and it fails exactly where the paper says allocation
needs virtual lengths — shortcut paths.  The controller turns verdicts
into admit/queue/reject decisions with machine-readable reasons and
survives checkpoint round trips.
"""

import pytest

from repro import obs
from repro.core import ContentionAnalysis
from repro.resilience import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionController,
    basic_share_feasible,
)
from repro.resilience.admission import (
    REASON_FLOOR,
    REASON_OK,
    REASON_QUEUE_AGED,
    REASON_QUEUE_FULL,
    REASON_UNROUTABLE,
)
from repro.scenarios import fig1, fig3, fig4, fig6


@pytest.fixture(autouse=True)
def _no_active_registry():
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


class TestBasicShareFeasible:
    @pytest.mark.parametrize("factory", [
        fig1.make_scenario,
        fig3.make_chain_scenario,
        fig4.make_scenario,
        fig6.make_scenario,
    ])
    def test_shortcut_free_groups_are_always_feasible(self, factory):
        """Sec. III-B: without shortcuts, basic shares jointly satisfy
        every clique constraint — admission can never starve a peer."""
        assert basic_share_feasible(ContentionAnalysis(factory()))

    def test_tight_capacity_fails_the_predicate(self):
        """Shrinking B below the basic load flips the verdict (the
        ``capacity`` override is what the runtime probes with)."""
        analysis = ContentionAnalysis(fig4.make_scenario())
        assert basic_share_feasible(analysis)
        assert not basic_share_feasible(analysis, capacity=0.5)


class TestAdmissionController:
    def test_ok_reason_admits(self):
        controller = AdmissionController()
        decision = controller.decide("f1", 0, REASON_OK)
        assert decision.action == ADMIT
        assert decision.reason == REASON_OK
        assert list(controller.waiting) == []

    def test_non_ok_reason_queues_fifo(self):
        controller = AdmissionController()
        controller.decide("f1", 0, REASON_FLOOR)
        controller.decide("f2", 0, REASON_UNROUTABLE)
        assert list(controller.waiting) == ["f1", "f2"]
        assert [d.action for d in controller.decisions] == [QUEUE, QUEUE]

    def test_already_waiting_flow_is_rejected_not_requeued(self):
        controller = AdmissionController()
        controller.decide("f1", 0, REASON_FLOOR)
        decision = controller.decide("f1", 1, REASON_FLOOR)
        assert decision.action == REJECT
        assert list(controller.waiting) == ["f1"]  # no duplicate

    def test_full_queue_rejects_with_typed_reason(self):
        controller = AdmissionController(max_queue=1)
        controller.decide("f1", 0, REASON_FLOOR)
        decision = controller.decide("f2", 0, REASON_FLOOR)
        assert decision.action == REJECT
        assert decision.reason == REASON_QUEUE_FULL
        assert REASON_FLOOR in decision.details  # original verdict kept

    def test_queue_disabled_means_hard_reject(self):
        controller = AdmissionController(queue_rejected=False)
        decision = controller.decide("f1", 0, REASON_FLOOR)
        assert decision.action == REJECT
        assert decision.reason == REASON_FLOOR
        assert not controller.waiting

    def test_disabled_controller_admits_everything(self):
        controller = AdmissionController(enabled=False)
        decision = controller.decide("f1", 0, REASON_FLOOR)
        assert decision.action == ADMIT

    def test_readmit_clears_queue_and_logs_admit(self):
        controller = AdmissionController()
        controller.decide("f1", 0, REASON_FLOOR)
        decision = controller.readmit("f1", 3)
        assert decision.action == ADMIT
        assert decision.epoch == 3
        assert list(controller.waiting) == []

    def test_drop_waiting_tolerates_unknown_flows(self):
        controller = AdmissionController()
        controller.drop_waiting("ghost")  # must not raise
        controller.decide("f1", 0, REASON_FLOOR)
        controller.drop_waiting("f1")
        assert not controller.waiting

    def test_every_decision_is_machine_readable(self):
        controller = AdmissionController(max_queue=1)
        controller.decide("f1", 0, REASON_OK)
        controller.decide("f2", 0, REASON_FLOOR)
        controller.decide("f3", 1, REASON_UNROUTABLE)
        for decision in controller.decisions:
            doc = decision.to_dict()
            assert set(doc) == {
                "flow", "epoch", "action", "reason", "details"
            }
            assert doc["reason"]  # never empty

    def test_snapshot_restore_round_trip(self):
        controller = AdmissionController(max_queue=2)
        controller.decide("f1", 0, REASON_OK)
        controller.decide("f2", 0, REASON_FLOOR)
        controller.decide("f3", 1, REASON_UNROUTABLE, "no path via X")
        snap = controller.snapshot()

        clone = AdmissionController(max_queue=2)
        clone.restore(snap)
        assert clone.snapshot() == snap
        assert list(clone.waiting) == list(controller.waiting)
        assert clone.decisions == controller.decisions


class TestAgedEviction:
    def test_no_age_bound_is_a_noop(self):
        controller = AdmissionController()
        controller.decide("f1", 0, REASON_FLOOR)
        assert controller.evict_aged(100) == []
        assert list(controller.waiting) == ["f1"]

    def test_eviction_fires_strictly_above_the_bound(self):
        controller = AdmissionController(max_queue_age=2)
        controller.decide("f1", 0, REASON_FLOOR)
        assert controller.evict_aged(2) == []  # age 2 == bound: kept
        (decision,) = controller.evict_aged(3)  # age 3 > bound: shed
        assert decision.action == REJECT
        assert decision.reason == REASON_QUEUE_AGED
        assert "waited 3 epochs" in decision.details
        assert not controller.waiting
        assert "f1" not in controller.queued_epoch

    def test_max_age_zero_allows_exactly_one_retry_epoch(self):
        controller = AdmissionController(max_queue_age=0)
        controller.decide("f1", 5, REASON_FLOOR)
        assert controller.evict_aged(5) == []  # the queuing epoch itself
        assert len(controller.evict_aged(6)) == 1

    def test_override_tightens_the_configured_bound(self):
        """The overload ladder passes ``max_age`` explicitly; it must
        win over the (looser) configured bound."""
        controller = AdmissionController(max_queue_age=10)
        controller.decide("f1", 0, REASON_FLOOR)
        assert controller.evict_aged(4) == []
        assert len(controller.evict_aged(4, max_age=1)) == 1

    def test_only_overaged_flows_are_shed(self):
        controller = AdmissionController(max_queue_age=1)
        controller.decide("old", 0, REASON_FLOOR)
        controller.decide("young", 3, REASON_FLOOR)
        evicted = controller.evict_aged(4)
        assert [d.flow_id for d in evicted] == ["old"]
        assert list(controller.waiting) == ["young"]

    def test_eviction_is_counted(self):
        from repro.obs import MetricsRegistry
        from repro.obs.registry import using_registry

        with using_registry(MetricsRegistry()) as reg:
            controller = AdmissionController(max_queue_age=0)
            controller.decide("f1", 0, REASON_FLOOR)
            controller.decide("f2", 0, REASON_FLOOR)
            assert len(controller.evict_aged(2)) == 2
            assert reg.counters["admission.evicted"].value == 2
            assert reg.counters[f"admission.{REJECT}"].value == 2

    def test_snapshot_restore_preserves_queue_ages(self):
        controller = AdmissionController(max_queue_age=3)
        controller.decide("f1", 0, REASON_FLOOR)
        controller.decide("f2", 2, REASON_UNROUTABLE)
        snap = controller.snapshot()

        clone = AdmissionController(max_queue_age=3)
        clone.restore(snap)
        assert clone.queued_epoch == controller.queued_epoch
        # The restored clone sheds on the same epoch the original would.
        assert [d.flow_id for d in clone.evict_aged(4)] == ["f1"]
        assert [d.flow_id for d in controller.evict_aged(4)] == ["f1"]
