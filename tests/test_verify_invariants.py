"""Paper-invariant checkers (Secs. II–III) on known-good allocations."""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_allocation,
    basic_fairness_lp_allocation,
)
from repro.scenarios import fig1, fig2, fig6
from repro.verify import (
    CheckResult,
    assert_all,
    check_basic_fairness,
    check_clique_capacity,
    check_fairness_constraint,
    check_prop1_bound,
    check_virtual_length_consistency,
)


@pytest.fixture(params=["fig1", "fig6", "fig2"])
def analysis(request):
    make = {
        "fig1": fig1.make_scenario,
        "fig6": fig6.make_scenario,
        "fig2": fig2.make_multi_hop_scenario,
    }[request.param]
    return ContentionAnalysis(make())


class TestKnownGoodAllocations:
    def test_basic_allocation_satisfies_everything(self, analysis):
        shares = basic_allocation(analysis).shares
        assert_all([
            check_clique_capacity(analysis, shares),
            check_basic_fairness(analysis, shares),
            check_fairness_constraint(analysis, shares),
            check_prop1_bound(analysis, shares),
            check_virtual_length_consistency(analysis.scenario, analysis),
        ])

    def test_lp_allocation_fits_cliques_and_basic_floor(self, analysis):
        shares = basic_fairness_lp_allocation(analysis).shares
        assert_all([
            check_clique_capacity(analysis, shares, tol=1e-7),
            check_basic_fairness(analysis, shares),
        ])


class TestViolationsAreCaught:
    def test_overloaded_clique(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        shares = basic_allocation(analysis).shares
        b = analysis.scenario.capacity
        bad = {fid: s + b for fid, s in shares.items()}
        result = check_clique_capacity(analysis, bad)
        assert not result
        assert result.violations

    def test_starved_flow(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        shares = dict(basic_allocation(analysis).shares)
        victim = min(shares)
        shares[victim] = 0.0
        result = check_basic_fairness(analysis, shares)
        assert not result
        assert victim in result.violations[0]

    def test_unfair_group(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        shares = dict(basic_allocation(analysis).shares)
        favored = min(shares)
        shares[favored] *= 2.0
        result = check_fairness_constraint(analysis, shares)
        assert not result

    def test_prop1_overshoot(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        b = analysis.scenario.capacity
        # Everyone at full channel capacity dwarfs (Σw)B/ω.
        bad = {f.flow_id: b for f in analysis.scenario.flows}
        result = check_prop1_bound(analysis, bad)
        assert not result

    def test_assert_all_raises_with_context(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        bad = {f.flow_id: 10.0 for f in analysis.scenario.flows}
        with pytest.raises(AssertionError) as exc:
            assert_all([
                check_clique_capacity(analysis, bad),
                check_fairness_constraint(analysis, bad),
            ])
        assert "clique_capacity" in str(exc.value)

    def test_checkresult_truthiness(self):
        assert CheckResult("x", True)
        assert not CheckResult("x", False, "boom")


class TestVirtualLength:
    def test_paper_scenarios_consistent(self, analysis):
        result = check_virtual_length_consistency(
            analysis.scenario, analysis
        )
        assert result, result.violations

    def test_long_flow_capped_at_three(self):
        scenario = fig2.make_multi_hop_scenario()
        for flow in scenario.flows:
            assert flow.virtual_length == min(flow.length, 3)
