"""Differential oracles: brute-force cliques, exact LP, 2PA-D vs 2PA-C."""

import itertools

import pytest

from repro.core import ContentionAnalysis, run_centralized
from repro.core.allocation import build_basic_fairness_lp
from repro.graphs import Graph, maximal_cliques
from repro.lp import LinearProgram, solve
from repro.scenarios import fig1, fig6, make_random_scenario
from repro.scenarios import cross as scenarios_cross
from repro.verify import (
    BruteForceLimit,
    brute_force_maximal_cliques,
    check_2pad_against_centralized,
    cliques_agree,
    lp_objective_matches,
    solve_exact,
)


def all_graphs(n):
    """Every labelled simple graph on vertices 0..n-1."""
    pairs = list(itertools.combinations(range(n), 2))
    for bits in range(2 ** len(pairs)):
        g = Graph()
        for v in range(n):
            g.add_vertex(v)
        for i, (u, v) in enumerate(pairs):
            if bits >> i & 1:
                g.add_edge(u, v)
        yield g


class TestBruteForceCliques:
    def test_empty_graph(self):
        assert brute_force_maximal_cliques(Graph()) == []

    def test_triangle(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert brute_force_maximal_cliques(g) == [frozenset({0, 1, 2})]

    def test_isolated_vertices_are_singleton_cliques(self):
        g = Graph.from_edges([], vertices=["a", "b"])
        assert brute_force_maximal_cliques(g) == [
            frozenset({"a"}), frozenset({"b"})
        ]

    def test_exhaustive_agreement_up_to_4_vertices(self):
        for n in range(5):
            for g in all_graphs(n):
                assert maximal_cliques(g) == brute_force_maximal_cliques(g)

    def test_limit_raises(self):
        g = Graph()
        for v in range(20):
            g.add_vertex(v)
        with pytest.raises(BruteForceLimit):
            brute_force_maximal_cliques(g, max_vertices=14)

    def test_agrees_on_paper_contention_graphs(self):
        for make in (fig1.make_scenario, fig6.make_scenario):
            analysis = ContentionAnalysis(make())
            assert cliques_agree(analysis.graph)


class TestLpOracle:
    def test_agreement_on_paper_lps(self):
        for make in (fig1.make_scenario, fig6.make_scenario):
            analysis = ContentionAnalysis(make())
            for group in analysis.groups:
                lp = build_basic_fairness_lp(analysis, group, 1.0)
                report = lp_objective_matches(lp, with_scipy=True)
                assert report["ok"], report

    def test_detects_wrong_objective(self):
        """A deliberately broken backend-style mismatch is flagged."""
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_constraint({"x": 1.0}, 2.0)
        report = lp_objective_matches(lp)
        assert report["ok"]
        assert report["exact_objective"] == pytest.approx(2.0)

    def test_status_mismatch_flagged(self):
        # An LP only the exact side sees as unbounded cannot easily be
        # constructed without breaking a solver, so check the report
        # structure on agreeing infeasible instances instead.
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_constraint({"x": 1.0}, 1.0)
        lp.set_lower_bound("x", 3.0)
        report = lp_objective_matches(lp)
        assert report["ok"]
        assert report["simplex_status"] == "infeasible"
        assert report["exact_status"] == "infeasible"

    def test_borderline_one_ulp_infeasibility_is_agreement(self):
        """Float data can overfill a constraint by one ulp: not a bug.

        Ten equal lower bounds of float 0.1 (which rounds *up* from
        1/10) sum to just over 1 in exact rationals, so the exact solver
        calls the LP infeasible while the float solver (correctly,
        within tolerance) solves it.
        """
        from fractions import Fraction

        lp = LinearProgram()
        for i in range(10):
            lp.add_variable(f"x{i}", 1.0)
            lp.set_lower_bound(f"x{i}", 0.1)
        lp.add_constraint({f"x{i}": 1.0 for i in range(10)}, 1.0)
        assert Fraction(0.1) * 10 > 1  # the ulp artifact itself
        assert solve_exact(lp).status == "infeasible"
        assert solve(lp, "simplex").status == "optimal"
        report = lp_objective_matches(lp)
        assert report["ok"]
        assert report.get("borderline") is True


class TestTwoPaOracle:
    def test_cross_fully_informed_and_equal(self):
        scenario = scenarios_cross()
        cent = run_centralized(scenario)
        report = check_2pad_against_centralized(scenario, cent.shares)
        assert report["ok"], report
        assert report["fully_informed_groups"] == report["groups"] == 1

    def test_paper_figures_partial_views_still_sound(self):
        """Figs. 1 and 6 have sources that cannot see their whole group:
        equivalence is not demanded there, but the gossip fixpoint and
        constraint completeness must still hold."""
        for make in (fig1.make_scenario, fig6.make_scenario):
            scenario = make()
            cent = run_centralized(scenario)
            report = check_2pad_against_centralized(scenario, cent.shares)
            assert report["ok"], report
            assert report["gossip_fixpoint"]
            assert report["constraint_completeness"]
            assert report["fully_informed_groups"] == 0

    def test_random_scenarios(self):
        for seed in range(4):
            scenario = make_random_scenario(
                num_nodes=10, num_flows=3, seed=seed
            )
            cent = run_centralized(scenario)
            report = check_2pad_against_centralized(scenario, cent.shares)
            assert report["ok"], (seed, report)

    def test_detects_tampered_shares_in_fully_informed_group(self):
        scenario = scenarios_cross()
        cent = run_centralized(scenario)
        wrong = {fid: s + 0.25 for fid, s in cent.shares.items()}
        report = check_2pad_against_centralized(scenario, wrong)
        assert not report["ok"]
        assert not report["conditional_equivalence"]
        assert report["mismatches"]
