"""Tests for progressive-filling max-min rates (the ref.-[5] baseline)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    maxmin_end_to_end_throughput,
    maxmin_flow_allocation,
    maxmin_subflow_rates,
    satisfies_basic_fairness,
)
from repro.core.model import SubflowId
from repro.lp import LinearProgram, lexicographic_maxmin
from repro.scenarios import fig1, fig5, fig6, make_random_scenario, star


class TestSubflowMaxmin:
    def test_fig1_values(self):
        """The flow-in-the-middle gets B/3; the free subflow rides to
        2B/3 — the classic max-min outcome on Fig. 1."""
        analysis = ContentionAnalysis(fig1.make_scenario())
        rates = maxmin_subflow_rates(analysis)
        assert rates[SubflowId("1", 2)] == pytest.approx(1 / 3)
        assert rates[SubflowId("2", 1)] == pytest.approx(1 / 3)
        assert rates[SubflowId("2", 2)] == pytest.approx(1 / 3)
        assert rates[SubflowId("1", 1)] == pytest.approx(2 / 3)

    def test_pentagon_uniform_half(self):
        rates = maxmin_subflow_rates(fig5.make_analysis())
        for rate in rates.values():
            assert rate == pytest.approx(0.5)

    def test_every_clique_respected(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        rates = maxmin_subflow_rates(analysis)
        for clique in analysis.cliques:
            assert sum(rates[s] for s in clique) <= 1.0 + 1e-9

    def test_weights_scale_rates(self):
        analysis = ContentionAnalysis(star(2).network and star(2))
        weights = {SubflowId("1", 1): 3.0, SubflowId("2", 1): 1.0}
        rates = maxmin_subflow_rates(analysis, weights=weights)
        assert rates[SubflowId("1", 1)] == pytest.approx(0.75)
        assert rates[SubflowId("2", 1)] == pytest.approx(0.25)

    def test_end_to_end_projection(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        rates = maxmin_subflow_rates(analysis)
        e2e = maxmin_end_to_end_throughput(rates, analysis)
        assert e2e == {"1": pytest.approx(1 / 3),
                       "2": pytest.approx(1 / 3)}


class TestFlowMaxmin:
    def test_fig6_values(self):
        """Hand-derived: filling freezes F1/F2/F4/F5 at B/3 (cliques
        3r1, 2r1+r2, 2r4+r5 all tighten together), then F3 rides to
        2B/3."""
        analysis = ContentionAnalysis(fig6.make_scenario())
        alloc = maxmin_flow_allocation(analysis)
        for fid in ("1", "2", "4", "5"):
            assert alloc.share(fid) == pytest.approx(1 / 3), fid
        assert alloc.share("3") == pytest.approx(2 / 3)

    def test_satisfies_basic_fairness(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        alloc = maxmin_flow_allocation(analysis)
        assert satisfies_basic_fairness(alloc.shares,
                                        analysis.scenario.flows)

    def test_lp_optimum_dominates_total(self):
        """Max-min trades total throughput for equality: the Prop. 2 LP
        total is at least as large."""
        analysis = ContentionAnalysis(fig6.make_scenario())
        mm = maxmin_flow_allocation(analysis)
        lp = basic_fairness_lp_allocation(analysis)
        assert (lp.total_effective_throughput
                >= mm.total_effective_throughput - 1e-9)

    def test_maxmin_min_share_dominates_lp(self):
        """...and max-min's *minimum* share is at least the LP's."""
        analysis = ContentionAnalysis(fig6.make_scenario())
        mm = maxmin_flow_allocation(analysis)
        lp = basic_fairness_lp_allocation(analysis)
        assert (min(mm.shares.values())
                >= min(lp.shares.values()) - 1e-9)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(num_nodes=st.integers(8, 14), num_flows=st.integers(2, 4),
       seed=st.integers(0, 300))
def test_progressive_filling_matches_lp_maxmin(num_nodes, num_flows,
                                               seed):
    """Two independent algorithms, one answer: progressive filling vs
    the LP-based lexicographic max-min on random contention systems."""
    scenario = make_random_scenario(num_nodes=num_nodes,
                                    num_flows=num_flows, seed=seed,
                                    max_hops=4)
    analysis = ContentionAnalysis(scenario)
    filling = maxmin_flow_allocation(analysis)

    lp = LinearProgram()
    for fid in scenario.flow_ids:
        lp.add_variable(f"r_{fid}", objective_coeff=1.0)
    for clique in analysis.cliques:
        coeffs = analysis.clique_coefficients(clique)
        lp.add_constraint(
            {f"r_{fid}": float(n) for fid, n in coeffs.items()}, 1.0
        )
    weights = {f"r_{f.flow_id}": f.weight for f in scenario.flows}
    via_lp = lexicographic_maxmin(lp, weights, fix_objective=False)
    for fid in scenario.flow_ids:
        assert filling.share(fid) == pytest.approx(
            via_lp[f"r_{fid}"], abs=1e-6
        ), fid


def test_unconstrained_variable_rejected():
    """A flow appearing in no clique would grow forever."""
    from repro.core.maxmin_rates import _progressive_fill

    with pytest.raises(ValueError):
        _progressive_fill(["x"], {"x": 1.0}, [])
