"""A flow that leaves and later re-joins (dynamic experiment, round 2)."""

import pytest

from repro.experiments import DynamicAllocationExperiment, FlowSchedule
from repro.scenarios import fig1


class TestRejoin:
    @pytest.fixture(scope="class")
    def snapshots(self):
        scenario = fig1.make_scenario()
        exp = DynamicAllocationExperiment(scenario, [
            FlowSchedule("1", start=0.0),
            # Flow 2 active in two separate windows.
            FlowSchedule("2", start=3.0, end=6.0),
        ], seed=5)
        snaps = exp.run(seconds=9.0)
        # Note: FlowSchedule models one window; the re-join path is
        # exercised through the restartable CBR source below.
        return exp, snaps

    def test_phases(self, snapshots):
        _, snaps = snapshots
        assert len(snaps) == 3

    def test_flow2_rate_windows(self, snapshots):
        _, snaps = snapshots
        assert snaps[0].rate("2") == 0.0
        assert snaps[1].rate("2") > 20.0

    def test_no_losses_from_reallocation(self, snapshots):
        exp, _ = snapshots
        # Transitions must not corrupt queues or schedulers.
        assert exp.metrics.total_lost_packets() < 60


class TestManualRejoinViaSources:
    def test_source_restart_resumes_traffic_through_the_stack(self):
        """Stop flow 2's source mid-run, restart it, and confirm the
        scheduler serves it again (source restartability end to end)."""
        from repro.sched import build_2pa

        scenario = fig1.make_scenario()
        build = build_2pa(scenario, "centralized", seed=4)
        run = build.run
        for idx, src in enumerate(run.sources):
            src.start(offset=idx * 997.0)
        sim = run.sim

        sim.run_until(2_000_000)
        f2_source = next(s for s in run.sources
                         if s.flow.flow_id == "2")
        f2_source.stop()
        sim.run_until(4_000_000)
        mid = run.metrics.flows["2"].delivered_end_to_end
        f2_source.start()
        sim.run_until(7_000_000)
        run.metrics.duration = 7_000_000
        final = run.metrics.flows["2"].delivered_end_to_end
        # Traffic resumed: deliveries grew substantially after restart.
        assert final > mid + 100
        # And flow 1 kept flowing throughout.
        assert run.metrics.flows["1"].delivered_end_to_end > 500
