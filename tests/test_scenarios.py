"""Tests pinning the scenario geometries to the paper's structures."""

import pytest

from repro.core import ContentionAnalysis
from repro.scenarios import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    make_random_scenario,
    node_graph,
    random_connected_network,
    random_flows,
)
from repro.graphs import is_connected


class TestFig1Geometry:
    def test_flows(self):
        s = fig1.make_scenario()
        assert [f.length for f in s.flows] == [2, 2]
        assert s.flows[0].path == ["A", "B", "C"]

    def test_no_shortcuts(self):
        s = fig1.make_scenario()
        for f in s.flows:
            assert not s.network.has_shortcut(f)

    def test_f11_isolated_from_f2(self):
        s = fig1.make_scenario()
        for other in ("D", "E", "F"):
            assert not s.network.in_range("A", other)
            assert not s.network.in_range("B", other)

    def test_custom_weight(self):
        s = fig1.make_scenario(weight=2.0)
        assert all(f.weight == 2.0 for f in s.flows)


class TestFig2Geometry:
    def test_all_pairs_in_range(self):
        s = fig2.make_multi_hop_scenario()
        nodes = s.network.nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert s.network.in_range(a, b)

    def test_weights(self):
        s = fig2.make_multi_hop_scenario()
        assert s.flow("1").weight == 2.0
        assert s.flow("2").weight == 1.0
        assert s.flow("2").length == 3


class TestFig3Geometry:
    def test_chain_parametric(self):
        s = fig3.make_chain_scenario(hops=4)
        assert s.flows[0].length == 4
        assert not s.network.has_shortcut(s.flows[0])

    def test_chain_contention_is_pm2(self):
        s = fig3.make_chain_scenario(hops=6)
        analysis = ContentionAnalysis(s)
        for c in analysis.cliques:
            hops = sorted(sid.hop for sid in c)
            assert hops[-1] - hops[0] == 2  # consecutive triples

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            fig3.make_chain_scenario(hops=0)


class TestAbstractScenarios:
    def test_fig4_weights_and_cliques(self):
        analysis = fig4.make_analysis()
        assert analysis.scenario.flow("2").length == 2
        assert len(analysis.cliques) == 2
        sizes = sorted(len(c) for c in analysis.cliques)
        assert sizes == [2, 4]

    def test_fig5_is_a_five_cycle(self):
        analysis = fig5.make_analysis()
        assert analysis.graph.num_vertices() == 5
        assert analysis.graph.num_edges() == 5
        assert all(analysis.graph.degree(v) == 2
                   for v in analysis.graph)

    def test_fig6_has_nine_subflows(self):
        s = fig6.make_scenario()
        assert len(s.all_subflows()) == 9
        assert [f.length for f in s.flows] == [4, 1, 1, 2, 1]


class TestRandomScenarios:
    def test_connected_network(self):
        net = random_connected_network(15, seed=2)
        assert is_connected(node_graph(net))
        assert len(net.nodes) == 15

    def test_determinism(self):
        a = random_connected_network(12, seed=5)
        b = random_connected_network(12, seed=5)
        assert a.positions == b.positions

    def test_flows_respect_hop_bounds(self):
        net = random_connected_network(20, seed=3)
        flows = random_flows(net, 5, seed=4, min_hops=2, max_hops=4)
        assert len(flows) == 5
        assert all(2 <= f.length <= 4 for f in flows)

    def test_flow_weights_cycle(self):
        net = random_connected_network(20, seed=3)
        flows = random_flows(net, 4, seed=4, weights=[1.0, 2.0])
        assert [f.weight for f in flows] == [1.0, 2.0, 1.0, 2.0]

    def test_scenario_is_valid_and_routable(self):
        s = make_random_scenario(num_nodes=18, num_flows=4, seed=11)
        # Scenario construction validates every hop is a link.
        analysis = ContentionAnalysis(s)
        assert analysis.cliques

    def test_flows_are_shortest_paths(self):
        from repro.routing import is_shortest

        s = make_random_scenario(num_nodes=18, num_flows=4, seed=11)
        for f in s.flows:
            assert is_shortest(s.network, f)
