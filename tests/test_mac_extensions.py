"""Tests for the MAC fidelity extensions: EIFS and the capture effect."""

import pytest

from repro.core.model import Network
from repro.mac import DcfPolicy, MacEntity, MacState, MacTimings, WirelessChannel
from repro.net.packet import DataPacket, Frame, FrameKind
from repro.phy import two_ray_ground
from repro.sim import RngRegistry, Simulator


def build(positions, timings=None, capture_db=None):
    sim = Simulator()
    net = Network.from_positions(positions)
    chan = WirelessChannel(sim, net, capture_threshold_db=capture_db)
    rng = RngRegistry(2)
    timings = timings or MacTimings()
    deliveries = []
    macs = {}
    for node in net.nodes:
        macs[node] = MacEntity(
            node=node, sim=sim, channel=chan,
            policy=DcfPolicy(node, timings), rng=rng, timings=timings,
            on_delivery=lambda n, p: deliveries.append((n, p)),
        )
    return sim, net, chan, macs, deliveries


class Recorder:
    def __init__(self):
        self.frames = []
        self.garbled = 0

    def on_medium_busy(self):
        pass

    def on_medium_idle(self):
        pass

    def on_frame(self, frame):
        self.frames.append(frame)

    def on_garbled(self):
        self.garbled += 1


class TestEifs:
    def test_eifs_value(self):
        t = MacTimings()
        assert t.eifs == pytest.approx(t.sifs + t.ack_duration + t.difs)

    def test_garbled_frame_sets_eifs_horizon(self):
        timings = MacTimings(use_eifs=True)
        sim, net, chan, macs, _ = build(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)},
            timings=timings,
        )
        # Two overlapping frames collide at r.
        for node in ("a", "b"):
            chan.transmit(node, Frame(FrameKind.RTS, node, "r",
                                      timings.rts_duration))
        sim.run_until(timings.rts_duration + 1)
        assert macs["r"].eifs_until > sim.now - 1

    def test_eifs_disabled_is_noop(self):
        sim, net, chan, macs, _ = build(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)},
        )
        for node in ("a", "b"):
            chan.transmit(node, Frame(FrameKind.RTS, node, "r", 352.0))
        sim.run_until(400)
        assert macs["r"].eifs_until == 0.0

    def test_hidden_terminal_scenario_still_works_with_eifs(self):
        timings = MacTimings(use_eifs=True)
        sim, net, chan, macs, deliveries = build(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)},
            timings=timings,
        )
        for i in range(20):
            macs["a"].enqueue(DataPacket("1", ("a", "r"), 512, 0.0, seq=i))
            macs["b"].enqueue(DataPacket("2", ("b", "r"), 512, 0.0, seq=i))
        sim.run_until(2_000_000)
        from_a = sum(1 for _, p in deliveries if p.flow_id == "1")
        from_b = sum(1 for _, p in deliveries if p.flow_id == "2")
        assert from_a > 5 and from_b > 5


class TestCapture:
    def positions(self):
        # near is 80 m from r, far is 240 m: power ratio (240/80)^4
        # = 81 ~ 19 dB.
        return {"near": (80, 0), "r": (0, 0), "far": (240, 0),
                "pad": (1000, 0)}

    def test_strong_signal_captures_weak_interferer(self):
        sim = Simulator()
        net = Network.from_positions(self.positions())
        chan = WirelessChannel(sim, net, capture_threshold_db=10.0)
        rec = Recorder()
        chan.register("r", rec)
        for n in ("near", "far", "pad"):
            chan.register(n, Recorder())
        chan.transmit("near", Frame(FrameKind.RTS, "near", "r", 352.0))
        chan.transmit("far", Frame(FrameKind.RTS, "far", "r", 352.0))
        sim.run()
        # The near frame decodes (captured); the far one is garbled.
        assert [f.src for f in rec.frames] == ["near"]
        assert rec.garbled == 1

    def test_comparable_signals_collide(self):
        sim = Simulator()
        positions = {"a": (100, 0), "r": (0, 0), "b": (0, 110),
                     "pad": (1000, 0)}
        net = Network.from_positions(positions)
        chan = WirelessChannel(sim, net, capture_threshold_db=10.0)
        rec = Recorder()
        chan.register("r", rec)
        for n in ("a", "b", "pad"):
            chan.register(n, Recorder())
        chan.transmit("a", Frame(FrameKind.RTS, "a", "r", 352.0))
        chan.transmit("b", Frame(FrameKind.RTS, "b", "r", 352.0))
        sim.run()
        assert rec.frames == []
        assert rec.garbled == 2

    def test_no_capture_when_disabled(self):
        sim = Simulator()
        net = Network.from_positions(self.positions())
        chan = WirelessChannel(sim, net)  # default: any overlap garbles
        rec = Recorder()
        chan.register("r", rec)
        for n in ("near", "far", "pad"):
            chan.register(n, Recorder())
        chan.transmit("near", Frame(FrameKind.RTS, "near", "r", 352.0))
        chan.transmit("far", Frame(FrameKind.RTS, "far", "r", 352.0))
        sim.run()
        assert rec.frames == []

    def test_power_ratio_math(self):
        """Sanity: 3x the distance = 81x the power under two-ray."""
        assert two_ray_ground(80 * 3) * 81 == pytest.approx(
            two_ray_ground(240) * 81
        )
        ratio = two_ray_ground(100) / two_ray_ground(300)
        assert ratio == pytest.approx(81.0, rel=1e-6)

    def test_full_mac_stack_with_capture(self):
        """End-to-end delivery still works with capture enabled."""
        sim, net, chan, macs, deliveries = build(
            {"a": (0, 0), "b": (200, 0)}, capture_db=10.0,
        )
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(50_000)
        assert len(deliveries) == 1
