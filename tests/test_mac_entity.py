"""Tests for the MAC state machine: handshakes, NAV, retries, hidden
terminals."""

import pytest

from repro.core.model import Network, SubflowId
from repro.mac import DcfPolicy, MacEntity, MacState, MacTimings, WirelessChannel
from repro.net.packet import DataPacket
from repro.sim import RngRegistry, Simulator, Tracer


def build(positions, queue_capacity=50, timings=None, seed=1,
          trace=False):
    """Wire a small MAC network; returns (sim, macs, deliveries, drops,
    tracer)."""
    sim = Simulator()
    net = Network.from_positions(positions)
    tracer = Tracer(["mac", "chan", "queue"] if trace else [])
    chan = WirelessChannel(sim, net, tracer)
    rng = RngRegistry(seed)
    timings = timings or MacTimings()
    deliveries = []
    drops = []
    macs = {}
    for node in net.nodes:
        macs[node] = MacEntity(
            node=node,
            sim=sim,
            channel=chan,
            policy=DcfPolicy(node, timings, queue_capacity),
            rng=rng,
            timings=timings,
            tracer=tracer,
            on_delivery=lambda n, p: deliveries.append((n, p)),
            on_drop=lambda n, p, r: drops.append((n, p, r)),
        )
    return sim, macs, deliveries, drops, tracer


def packet(route, hop=1, size=512, seq=1):
    return DataPacket(flow_id="1", route=tuple(route), size_bytes=size,
                      created_at=0.0, seq=seq, hop=hop)


class TestBasicExchange:
    def test_single_packet_delivered(self):
        sim, macs, deliveries, drops, _ = build(
            {"a": (0, 0), "b": (200, 0)}
        )
        p = packet(["a", "b"])
        assert macs["a"].enqueue(p)
        sim.run_until(50_000)
        assert [(n, q.uid) for n, q in deliveries] == [("b", p.uid)]
        assert macs["a"].tx_success == 1
        assert drops == []

    def test_multiple_packets_in_order(self):
        sim, macs, deliveries, _, _ = build({"a": (0, 0), "b": (200, 0)})
        packets = [packet(["a", "b"], seq=i) for i in range(5)]
        for p in packets:
            macs["a"].enqueue(p)
        sim.run_until(100_000)
        assert [q.seq for _, q in deliveries] == [p.seq for p in packets]

    def test_exchange_duration_is_physical(self):
        """One exchange takes at least DIFS + the 4-frame transaction."""
        sim, macs, deliveries, _, _ = build({"a": (0, 0), "b": (200, 0)})
        t = MacTimings()
        macs["a"].enqueue(packet(["a", "b"]))
        sim.run_until(1_000_000)
        # Delivery happens at DATA end; floor = DIFS + RTS + SIFS + CTS
        # + SIFS + DATA.
        floor = (t.difs + t.rts_duration + t.sifs + t.cts_duration
                 + t.sifs + t.data_duration(512))
        assert deliveries, "packet never delivered"
        # Completed well before the horizon and not before the floor.
        assert sim.events_processed > 0

    def test_throughput_near_saturation(self):
        """Backlogged single link achieves close to the analytic rate."""
        sim, macs, deliveries, _, _ = build({"a": (0, 0), "b": (200, 0)},
                                            queue_capacity=400)
        for i in range(400):
            macs["a"].enqueue(packet(["a", "b"], seq=i))
        seconds = 1.0
        sim.run_until(seconds * 1e6)
        t = MacTimings()
        # Mean backoff of CWmin/2 slots between transactions.
        per_packet = (t.difs + t.transaction_duration(512)
                      + t.slot * t.cw_min / 2)
        expected = seconds * 1e6 / per_packet
        assert len(deliveries) == pytest.approx(expected, rel=0.15)


class TestContention:
    def test_two_senders_share_one_receiver(self):
        sim, macs, deliveries, _, _ = build(
            {"a": (0, 0), "r": (200, 0), "b": (400, 0)},
            queue_capacity=100,
        )
        for i in range(100):
            macs["a"].enqueue(
                DataPacket("1", ("a", "r"), 512, 0.0, seq=i))
            macs["b"].enqueue(
                DataPacket("2", ("b", "r"), 512, 0.0, seq=i))
        sim.run_until(1_000_000)
        from_a = sum(1 for n, p in deliveries if p.flow_id == "1")
        from_b = sum(1 for n, p in deliveries if p.flow_id == "2")
        # In-range senders share the channel roughly evenly under DCF.
        assert from_a + from_b > 150
        assert 0.5 < from_a / from_b < 2.0

    def test_hidden_terminals_eventually_deliver(self):
        """a and b are hidden from each other; CTS-based NAV plus retries
        still let both make progress."""
        sim, macs, deliveries, drops, _ = build(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)}
        )
        for i in range(50):
            macs["a"].enqueue(DataPacket("1", ("a", "r"), 512, 0.0, seq=i))
            macs["b"].enqueue(DataPacket("2", ("b", "r"), 512, 0.0, seq=i))
        sim.run_until(2_000_000)
        from_a = sum(1 for n, p in deliveries if p.flow_id == "1")
        from_b = sum(1 for n, p in deliveries if p.flow_id == "2")
        assert from_a > 10
        assert from_b > 10

    def test_nav_defers_third_party(self):
        """c overhears the a->b exchange and must not collide with it."""
        sim, macs, deliveries, _, tracer = build(
            {"a": (0, 0), "b": (200, 0), "c": (390, 0), "d": (590, 0)},
            trace=True,
        )
        for i in range(20):
            macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0, seq=i))
            macs["c"].enqueue(DataPacket("2", ("c", "d"), 512, 0.0, seq=i))
        sim.run_until(2_000_000)
        from_a = sum(1 for n, p in deliveries if p.flow_id == "1")
        from_c = sum(1 for n, p in deliveries if p.flow_id == "2")
        # Every packet either delivered or (rarely) dropped after the
        # retry limit; neither side may starve.
        assert from_a >= 19
        assert from_c >= 19


class TestFailureHandling:
    def test_unreachable_receiver_drops_after_retries(self):
        """No CTS ever arrives: retry limit then MAC drop."""
        sim, macs, deliveries, drops, _ = build(
            {"a": (0, 0), "b": (1000, 0)}  # out of range
        )
        net_packet = DataPacket("1", ("a", "b"), 512, 0.0)
        # Bypass scenario validation: enqueue directly.
        macs["a"].enqueue(net_packet)
        sim.run_until(2_000_000)
        assert deliveries == []
        assert len(drops) == 1
        assert drops[0][2] == "retry-limit"
        assert macs["a"].mac_drops == 1
        # The MAC must return to IDLE and not wedge.
        assert macs["a"].state in (MacState.IDLE, MacState.WAIT)

    def test_queue_overflow_reported_via_enqueue(self):
        sim, macs, _, _, _ = build({"a": (0, 0), "b": (1000, 0)},
                                   queue_capacity=2)
        assert macs["a"].enqueue(packet(["a", "b"], seq=1))
        assert macs["a"].enqueue(packet(["a", "b"], seq=2))
        assert not macs["a"].enqueue(packet(["a", "b"], seq=3))

    def test_duplicate_suppression_on_lost_ack(self):
        """Receiver delivers once even if the sender retries the same
        packet after a lost ACK (forced via duplicate uid injection)."""
        sim, macs, deliveries, _, _ = build({"a": (0, 0), "b": (200, 0)})
        p = packet(["a", "b"])
        macs["a"].enqueue(p)
        sim.run_until(100_000)
        # Simulate a retransmission of the very same uid.
        clone = DataPacket("1", ("a", "b"), 512, 0.0, seq=p.seq)
        clone.uid = p.uid
        macs["a"].enqueue(clone)
        sim.run_until(200_000)
        assert len(deliveries) == 1


class TestBackoffFreezing:
    def test_frozen_backoff_resumes(self):
        """A node whose backoff is interrupted still transmits later."""
        sim, macs, deliveries, _, _ = build(
            {"a": (0, 0), "b": (200, 0), "c": (400, 0)}
        )
        # b talks to c while a wants to talk to b.
        macs["b"].enqueue(DataPacket("2", ("b", "c"), 512, 0.0))
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(200_000)
        flows = {p.flow_id for _, p in deliveries}
        assert flows == {"1", "2"}
