"""Tests for CBR sources and the metrics collector."""

import pytest

from repro.core.model import Flow, SubflowId
from repro.metrics import MetricsCollector
from repro.net.packet import DataPacket
from repro.scenarios import fig1
from repro.sim import RngRegistry, Simulator
from repro.traffic import CbrSource


class TestCbrSource:
    def flow(self):
        return Flow("1", ["a", "b", "c"])

    def test_rate_is_respected(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, self.flow(), lambda p: got.append(p) or True,
                        packets_per_second=200)
        src.start()
        sim.run_until(1_000_000)
        assert len(got) == pytest.approx(200, abs=1)

    def test_packet_fields(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, self.flow(), lambda p: got.append(p) or True)
        src.start()
        sim.run_until(10_000)
        p = got[0]
        assert p.flow_id == "1"
        assert p.route == ("a", "b", "c")
        assert p.size_bytes == 512
        assert p.hop == 1
        assert got[1].seq == got[0].seq + 1

    def test_source_drop_callback(self):
        sim = Simulator()
        drops = []
        src = CbrSource(
            sim, self.flow(), lambda p: False,
            on_source_drop=lambda fid: drops.append(fid),
        )
        src.start()
        sim.run_until(20_000)
        assert drops and all(d == "1" for d in drops)

    def test_stop_halts_generation(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, self.flow(), lambda p: got.append(p) or True)
        src.start()
        sim.run_until(100_000)
        count = len(got)
        src.stop()
        sim.run_until(1_000_000)
        assert len(got) <= count + 1

    def test_offset_delays_start(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, self.flow(), lambda p: got.append(sim.now) or True)
        src.start(offset=3000.0)
        sim.run_until(3_500)
        assert got == [3000.0]

    def test_jitter_keeps_average_rate(self):
        sim = Simulator()
        got = []
        src = CbrSource(
            sim, self.flow(), lambda p: got.append(p) or True,
            packets_per_second=200, rng=RngRegistry(1),
            jitter_fraction=0.5,
        )
        src.start()
        sim.run_until(2_000_000)
        assert len(got) == pytest.approx(400, rel=0.05)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CbrSource(sim, self.flow(), lambda p: True,
                      packets_per_second=0)
        with pytest.raises(ValueError):
            CbrSource(sim, self.flow(), lambda p: True,
                      jitter_fraction=1.5)


class TestMetricsCollector:
    def setup_method(self):
        self.scenario = fig1.make_scenario()
        self.metrics = MetricsCollector(self.scenario)

    def hop_packet(self, flow="1", hop=1):
        path = tuple(self.scenario.flow(flow).path)
        return DataPacket(flow, path, 512, 0.0, hop=hop)

    def test_hop_delivery_counts_subflows(self):
        self.metrics.record_hop_delivery(self.hop_packet("1", 1))
        self.metrics.record_hop_delivery(self.hop_packet("1", 2))
        assert self.metrics.subflow_count("1", 1) == 1
        assert self.metrics.subflow_count("1", 2) == 1
        assert self.metrics.flows["1"].delivered_end_to_end == 1

    def test_total_effective_counts_last_hops_only(self):
        self.metrics.record_hop_delivery(self.hop_packet("1", 1))
        self.metrics.record_hop_delivery(self.hop_packet("2", 2))
        assert self.metrics.total_effective_throughput_packets() == 1

    def test_loss_accounting(self):
        self.metrics.record_relay_drop(self.hop_packet("1", 2))
        p = self.hop_packet("1", 2)
        self.metrics.record_mac_drop(p)
        assert self.metrics.total_lost_packets() == 2
        first_hop = self.hop_packet("1", 1)
        self.metrics.record_mac_drop(first_hop)
        # First-hop MAC drops are not "in-network" losses.
        assert self.metrics.total_lost_packets() == 2

    def test_loss_ratio_definition(self):
        """lost / delivered-end-to-end, as in the paper's tables."""
        for _ in range(10):
            self.metrics.record_hop_delivery(self.hop_packet("1", 2))
        self.metrics.record_relay_drop(self.hop_packet("1", 2))
        assert self.metrics.loss_ratio() == pytest.approx(0.1)

    def test_loss_ratio_degenerate_cases(self):
        assert self.metrics.loss_ratio() == 0.0
        self.metrics.record_relay_drop(self.hop_packet("1", 2))
        assert self.metrics.loss_ratio() == float("inf")

    def test_offered_and_source_drops(self):
        self.metrics.record_offered("1")
        self.metrics.record_source_drop("1")
        assert self.metrics.flows["1"].offered == 1
        assert self.metrics.flows["1"].source_drops == 1

    def test_throughput_fraction(self):
        self.metrics.duration = 1_000_000.0  # 1 s
        for _ in range(100):
            self.metrics.record_hop_delivery(self.hop_packet("1", 2))
        frac = self.metrics.flow_throughput_fraction("1")
        # 100 * 512 * 8 bits over 2 Mbps for 1 s
        assert frac == pytest.approx(100 * 4096 / 2e6)

    def test_throughput_fraction_requires_duration(self):
        with pytest.raises(RuntimeError):
            self.metrics.flow_throughput_fraction("1")

    def test_summary_keys(self):
        self.metrics.duration = 1e6
        summary = self.metrics.summary()
        assert "r_F1.1" in summary
        assert "u_1" in summary
        assert set(["total_effective", "lost", "loss_ratio"]) <= set(summary)

    def test_per_subflow_fractions(self):
        self.metrics.duration = 1e6
        self.metrics.record_hop_delivery(self.hop_packet("2", 1))
        fracs = self.metrics.per_subflow_fractions()
        assert fracs[SubflowId("2", 1)] == pytest.approx(4096 / 2e6)
        assert fracs[SubflowId("1", 1)] == 0.0
