"""Warm-started simplex: exact equality with cold solves on the dynamic
experiment's re-solve sequence, and clean fallback whenever a stored
basis does not fit the new problem."""

import pytest

from repro.core.allocation import basic_fairness_lp_allocation
from repro.core.contention import ContentionAnalysis
from repro.core.model import Scenario
from repro.lp.problem import LinearProgram
from repro.lp.simplex import solve_simplex
from repro.lp.solvers import solve
from repro.obs.registry import using_registry
from repro.perf.warm import WarmLPCache, lp_structure_signature
from repro.scenarios.random_topology import (
    random_connected_network,
    random_flows,
)


def sample_lp(cap=4.0, ycap=3.0):
    lp = LinearProgram()
    lp.maximize({"x": 1.0, "y": 2.0})
    lp.add_constraint({"x": 1.0, "y": 1.0}, cap)
    lp.add_constraint({"y": 1.0}, ycap)
    lp.set_lower_bound("x", 0.5)
    return lp


def churn_scenario(seed=3):
    net = random_connected_network(20, seed=seed)
    flows = random_flows(net, 6, seed=seed + 1)
    return Scenario(net, flows, name="churn", capacity=1.0)


def churn_sequence(scenario):
    """Active flow-id subsets mimicking the dynamic experiment timeline."""
    ids = scenario.flow_ids
    return [
        ids,
        [i for i in ids if i != ids[2]],
        [i for i in ids if i not in (ids[2], ids[4])],
        [i for i in ids if i != ids[4]],
        ids,
    ]


class TestWarmStartExactness:
    def test_same_lp_warm_equals_cold(self):
        lp = sample_lp()
        cold = solve_simplex(lp)
        warm = solve_simplex(lp, start_basis=cold.basis)
        assert warm.status == cold.status == "optimal"
        assert warm.values == cold.values
        assert warm.objective == cold.objective
        assert warm.basis == cold.basis

    def test_perturbed_bounds_warm_equals_cold(self):
        base = solve_simplex(sample_lp())
        for cap, ycap in [(5.0, 2.5), (3.0, 3.0), (4.0, 0.8), (10.0, 9.0)]:
            lp = sample_lp(cap, ycap)
            cold = solve_simplex(lp)
            warm = solve_simplex(lp, start_basis=base.basis)
            assert warm.status == cold.status
            assert warm.values == cold.values
            assert warm.objective == cold.objective

    def test_dynamic_solve_sequence_bit_identical(self):
        """The acceptance sequence: every churn re-solve, warm == cold."""
        scenario = churn_scenario()
        cache = WarmLPCache()
        for active in churn_sequence(scenario):
            sub = Scenario(
                scenario.network,
                [f for f in scenario.flows if f.flow_id in set(active)],
                name="churn-active", capacity=scenario.capacity,
            )
            analysis = ContentionAnalysis(sub)
            cold = basic_fairness_lp_allocation(analysis)
            warm = basic_fairness_lp_allocation(
                analysis, backend=cache.solver
            )
            assert warm.shares == cold.shares
            assert warm.lp_solution.status == cold.lp_solution.status
        assert cache.hits > 0  # the sequence actually reused bases

    def test_infeasible_and_unbounded_statuses_unchanged(self):
        lp = LinearProgram()
        lp.maximize({"x": 1.0})
        lp.add_constraint({"x": 1.0}, 1.0)
        good = solve_simplex(lp)

        unbounded = LinearProgram()
        unbounded.maximize({"x": 1.0, "y": 1.0})
        unbounded.add_constraint({"x": 1.0}, 1.0)
        assert solve_simplex(unbounded).status == "unbounded"

        infeasible = LinearProgram()
        infeasible.maximize({"x": 1.0})
        infeasible.add_constraint({"x": -1.0}, -5.0)  # x >= 5
        infeasible.add_constraint({"x": 1.0}, 1.0)    # x <= 1
        cold = solve_simplex(infeasible)
        warm = solve_simplex(infeasible, start_basis=good.basis)
        assert cold.status == warm.status == "infeasible"


class TestWarmStartFallback:
    def test_wrong_length_basis_falls_back(self):
        lp = sample_lp()
        cold = solve_simplex(lp)
        with using_registry() as reg:
            warm = solve_simplex(lp, start_basis=(("v", 0),))
        assert warm.values == cold.values
        assert reg.counters["perf.lp.warm.fallbacks"].value == 1

    def test_unknown_label_falls_back(self):
        lp = sample_lp()
        cold = solve_simplex(lp)
        bogus = (("v", 17), ("s", 0))
        warm = solve_simplex(lp, start_basis=bogus)
        assert warm.values == cold.values

    def test_duplicate_labels_fall_back(self):
        lp = sample_lp()
        cold = solve_simplex(lp)
        warm = solve_simplex(lp, start_basis=(("v", 0), ("v", 0)))
        assert warm.values == cold.values

    def test_installed_counter_on_success(self):
        lp = sample_lp()
        cold = solve_simplex(lp)
        with using_registry() as reg:
            solve_simplex(lp, start_basis=cold.basis)
        assert reg.counters["perf.lp.warm.attempts"].value == 1
        assert reg.counters["perf.lp.warm.installed"].value == 1
        assert "perf.lp.warm.fallbacks" not in reg.counters


class TestWarmLPCache:
    def test_structure_signature_groups_siblings(self):
        a = sample_lp(4.0, 3.0)
        b = sample_lp(9.0, 1.0)  # same structure, different numbers
        assert lp_structure_signature(a) == lp_structure_signature(b)
        c = sample_lp()
        c.add_constraint({"x": 1.0}, 2.0)
        assert lp_structure_signature(a) != lp_structure_signature(c)

    def test_cache_hits_and_lru_bound(self):
        cache = WarmLPCache(max_entries=1)
        cache.solver(sample_lp())
        cache.solver(sample_lp(5.0, 2.0))
        assert (cache.hits, cache.misses) == (1, 1)
        other = LinearProgram()
        other.maximize({"z": 1.0})
        other.add_constraint({"z": 1.0}, 1.0)
        cache.solver(other)          # evicts the sibling entry
        assert len(cache) == 1
        cache.solver(sample_lp())
        assert cache.misses == 3

    def test_callable_backend_threads_through_solve(self):
        cache = WarmLPCache()
        lp = sample_lp()
        with using_registry() as reg:
            sol = solve(lp, backend=cache.solver)
        assert sol.is_optimal
        assert reg.counters["lp.solves.solver"].value == 1

    def test_unknown_string_backend_still_raises(self):
        with pytest.raises(ValueError):
            solve(sample_lp(), backend="no-such-backend")
