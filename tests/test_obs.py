"""Tests for the repro.obs observability layer.

Covers the metrics registry (counters, gauges, histogram percentiles,
reentrant phase timers), the zero-overhead disabled path, JSONL round
trips, atomic artifact writes, schema validation, and the immutable
NullTracer / per-category Tracer index satellites.
"""

import json
import os

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    RunArtifact,
    SchemaError,
    dump_jsonl,
    load_jsonl,
    records_to_trace,
    render_profile,
    trace_to_records,
    validate_artifact,
)
from repro.sim import NULL_TRACER, NullTracer, Tracer


@pytest.fixture(autouse=True)
def _no_active_registry():
    """Keep the module-level registry clean across tests."""
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        reg.gauge("g").set(7)
        assert reg.counters["a"].value == 3.5
        assert reg.gauges["g"].value == 7.0
        # Lazy accessors return the same object.
        assert reg.counter("a") is reg.counters["a"]

    def test_histogram_percentiles(self):
        # Hyndman–Fan type-7 interpolation: h = (n-1) * p/100, linear
        # between the bracketing order statistics.
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(v)
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)
        assert hist.percentile(99) == pytest.approx(99.01)
        assert hist.percentile(100) == 100
        assert hist.percentile(0) == 1
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_weighted_percentile_interpolates(self):
        from repro.obs.registry import weighted_percentile

        assert weighted_percentile([1.0], 0) == 1.0
        assert weighted_percentile([1.0], 100) == 1.0
        assert weighted_percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert weighted_percentile([1.0, 2.0, 3.0], 50) == 2.0
        assert weighted_percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_histogram_empty_and_bad_percentile(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.summary() == {"count": 0}
        with pytest.raises(ValueError):
            hist.percentile(50)
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_timer_accumulates_with_injected_clock(self):
        ticks = [0.0]

        def wall():
            ticks[0] += 1.0
            return ticks[0]

        reg = MetricsRegistry(wall_clock=wall, cpu_clock=lambda: 0.0)
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        t = reg.timers["t"]
        assert t.calls == 2
        assert t.wall_s == pytest.approx(2.0)  # two enter/exit pairs, 1s each

    def test_timer_reentrant_nesting_counts_outermost_once(self):
        ticks = [0.0]

        def wall():
            ticks[0] += 1.0
            return ticks[0]

        reg = MetricsRegistry(wall_clock=wall, cpu_clock=lambda: 0.0)
        timer = reg.timer("nested")
        with timer:
            with timer:  # same-name reentry: no double counting
                pass
        assert timer.calls == 2
        # Only the outer pair samples the clock: enter=1.0, exit=2.0.
        assert timer.wall_s == pytest.approx(1.0)

    def test_distinct_timers_nest_independently(self):
        reg = MetricsRegistry()
        with reg.timer("outer"):
            with reg.timer("inner"):
                pass
        assert reg.timers["outer"].calls == 1
        assert reg.timers["inner"].calls == 1
        assert reg.timers["outer"].wall_s >= reg.timers["inner"].wall_s

    def test_module_helpers_disabled_are_noops(self):
        assert obs.get_registry() is None
        obs.incr("never")
        obs.observe("never", 1.0)
        obs.set_gauge("never", 1.0)
        ctx = obs.phase_timer("never")
        with ctx:
            pass
        # Nothing was created anywhere.
        with obs.using_registry() as reg:
            assert reg.counters == {} and reg.timers == {}

    def test_using_registry_restores_previous(self):
        outer = MetricsRegistry()
        obs.set_registry(outer)
        with obs.using_registry() as inner:
            obs.incr("x")
            assert obs.get_registry() is inner
        assert obs.get_registry() is outer
        assert "x" not in outer.counters
        assert inner.counters["x"].value == 1.0

    def test_snapshot_shape(self):
        with obs.using_registry() as reg:
            obs.incr("c", 2)
            obs.set_gauge("g", 3)
            obs.observe("h", 1.0)
            with obs.phase_timer("t"):
                pass
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["timers"]["t"]["calls"] == 1
        # Snapshot must be JSON-serializable as-is.
        json.dumps(snap)

    def test_render_profile_mentions_everything(self):
        with obs.using_registry() as reg:
            obs.incr("my.counter", 5)
            obs.set_gauge("my.gauge", 1.5)
            obs.observe("my.hist", 2.0)
            with obs.phase_timer("my.phase"):
                pass
        text = render_profile(reg)
        for needle in ("my.counter", "my.gauge", "my.hist", "my.phase"):
            assert needle in text


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        records = [
            {"record": "counter", "name": "a", "value": 1.0},
            {"record": "trace", "time": 2.0, "category": "mac",
             "message": "rts", "fields": {"node": "A"}},
        ]
        assert dump_jsonl(path, records) == 2
        assert load_jsonl(path) == records

    def test_trace_record_round_trip(self, tmp_path):
        tracer = Tracer(["mac"])
        tracer.log(1.0, "mac", "rts-sent", node="A", retries=2)
        tracer.log(5.0, "mac", "cts-timeout", node="B")
        records = trace_to_records(tracer)
        path = str(tmp_path / "trace.jsonl")
        dump_jsonl(path, records)
        rebuilt = records_to_trace(load_jsonl(path))
        assert [r.time for r in rebuilt] == [1.0, 5.0]
        assert rebuilt[0].field("node") == "A"
        assert rebuilt[0].field("retries") == 2
        assert rebuilt[1].message == "cts-timeout"

    def test_empty_dump(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert dump_jsonl(path, []) == 0
        assert load_jsonl(path) == []


class TestArtifact:
    def _artifact(self):
        art = RunArtifact(kind="table1", scenario="fig6", seed=3,
                          config={"duration": 1.0})
        with obs.using_registry() as reg:
            obs.incr("lp.solves", 4)
            with obs.phase_timer("lp.solve"):
                pass
        art.attach_registry(reg)
        art.results = {"total_effective": 123}
        art.wall_time_s = 0.25
        return art

    def test_json_round_trip_and_schema(self):
        art = self._artifact()
        doc = art.to_json_dict()
        validate_artifact(doc)
        back = RunArtifact.from_json_dict(json.loads(json.dumps(doc)))
        assert back.kind == "table1"
        assert back.results["total_effective"] == 123
        assert back.metrics["counters"]["lp.solves"] == 4.0

    def test_atomic_write_and_load(self, tmp_path):
        art = self._artifact()
        path = str(tmp_path / "artifact.json")
        art.write(path)
        # No temp litter left behind.
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []
        loaded = RunArtifact.load(path)
        assert loaded.seed == 3
        assert loaded.metrics["timers"]["lp.solve"]["calls"] == 1
        # Overwrite is atomic too: the file is replaced, never truncated.
        art.results["total_effective"] = 456
        art.write(path)
        assert RunArtifact.load(path).results["total_effective"] == 456

    def test_jsonl_layout_round_trip(self, tmp_path):
        art = self._artifact()
        tracer = Tracer(["app"])
        tracer.log(9.0, "app", "hop-delivered", node="C")
        art.attach_trace(tracer)
        path = str(tmp_path / "artifact.jsonl")
        art.write(path)
        loaded = RunArtifact.load(path)
        assert loaded.kind == "table1"
        assert loaded.metrics["counters"]["lp.solves"] == 4.0
        assert loaded.metrics["timers"]["lp.solve"]["calls"] == 1
        assert len(loaded.trace) == 1
        assert loaded.trace[0]["message"] == "hop-delivered"

    def test_schema_rejects_bad_documents(self):
        art = self._artifact()
        doc = art.to_json_dict()
        for mutation, path_hint in (
            (lambda d: d.pop("results"), "results"),
            (lambda d: d.update(schema="wrong/name"), "schema"),
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d["metrics"].pop("timers"), "timers"),
            (lambda d: d["metrics"]["counters"].update(bad="x"), "bad"),
            (lambda d: d["trace"].append({"time": 1.0}), "trace"),
        ):
            bad = json.loads(json.dumps(doc))
            mutation(bad)
            with pytest.raises(SchemaError) as err:
                validate_artifact(bad)
            assert path_hint in str(err.value)

    def test_validate_non_dict(self):
        with pytest.raises(SchemaError):
            validate_artifact([1, 2, 3])


class TestNullTracer:
    def test_log_is_ignored(self):
        NULL_TRACER.log(1.0, "mac", "rts-sent", node="A")
        assert NULL_TRACER.records == []
        assert NULL_TRACER.count("mac") == 0

    def test_enable_is_rejected(self):
        with pytest.raises(TypeError):
            NULL_TRACER.enable("mac")
        assert NULL_TRACER.enabled == set()

    def test_log_after_constructor_categories_still_ignored(self):
        # Even a NullTracer constructed with categories never records.
        tracer = NullTracer(["mac"])
        tracer.log(1.0, "mac", "rts-sent")
        assert tracer.records == []
        assert not tracer.active("mac")

    def test_is_a_tracer(self):
        assert isinstance(NULL_TRACER, Tracer)


class TestTracerIndex:
    def _loaded_tracer(self):
        tracer = Tracer(["mac", "chan", "queue"])
        for i in range(10):
            tracer.log(float(i), "mac", "rts-sent", seq=i)
            tracer.log(float(i), "chan", "busy")
        tracer.log(99.0, "queue", "drop")
        return tracer

    def test_filter_uses_index(self):
        tracer = self._loaded_tracer()
        assert len(tracer.filter("mac")) == 10
        assert len(tracer.filter("chan")) == 10
        assert len(tracer.filter("queue")) == 1
        assert tracer.filter("nothing") == []
        # Records and per-category views agree.
        assert len(tracer.records) == 21
        assert tracer.filter("mac")[0].field("seq") == 0

    def test_count_with_and_without_prefix(self):
        tracer = self._loaded_tracer()
        assert tracer.count("mac") == 10
        assert tracer.count("mac", "rts") == 10
        assert tracer.count("mac", "cts") == 0
        assert tracer.count("missing") == 0

    def test_clear_resets_index(self):
        tracer = self._loaded_tracer()
        tracer.clear()
        assert tracer.records == []
        assert tracer.filter("mac") == []
        assert tracer.count("chan") == 0
        tracer.log(1.0, "mac", "fresh")
        assert tracer.count("mac") == 1


class TestInstrumentationPoints:
    def test_contention_and_lp_metrics(self):
        from repro.core import ContentionAnalysis, basic_fairness_lp_allocation
        from repro.scenarios import fig1

        with obs.using_registry() as reg:
            analysis = ContentionAnalysis(fig1.make_scenario())
            basic_fairness_lp_allocation(analysis)
        snap = reg.snapshot()
        assert snap["counters"]["contention.analyses"] == 1
        assert snap["counters"]["contention.cliques_found"] >= 1
        assert snap["counters"]["lp.solves"] >= 1
        assert snap["counters"]["lp.simplex.pivots"] >= 1
        assert snap["timers"]["contention.clique_enumeration"]["calls"] == 1
        assert snap["timers"]["lp.solve"]["calls"] >= 1

    def test_distributed_convergence_metrics(self):
        from repro.core import DistributedAllocator
        from repro.scenarios import fig6

        with obs.using_registry() as reg:
            allocator = DistributedAllocator(fig6.make_scenario())
            allocator.run()
        assert allocator.convergence["max_rounds"] >= 1
        assert allocator.convergence["total_messages"] >= 1
        assert set(allocator.convergence["rounds_per_flow"]) == {
            "1", "2", "3", "4", "5"
        }
        snap = reg.snapshot()
        assert snap["counters"]["2pad.messages"] >= 1
        assert snap["counters"]["2pad.local_lps"] == 5
        assert snap["histograms"]["2pad.rounds_to_convergence"]["count"] == 5
        assert snap["gauges"]["2pad.max_rounds"] >= 1

    def test_propagation_fixpoint_unchanged_by_round_based_gossip(self):
        # The iterative gossip must reach the same constraint sets as the
        # original one-shot union (Table I depends on it).
        from repro.core import DistributedAllocator
        from repro.scenarios import fig6

        allocator = DistributedAllocator(fig6.make_scenario())
        allocator.build_local_views()
        allocator.propagate_constraints()
        for flow in allocator.scenario.flows:
            relevant = set()
            for node in flow.path:
                for clique in allocator.views[node].local_cliques:
                    if any(sid.flow == flow.flow_id for sid in clique):
                        relevant.add(clique)
            for node in flow.path:
                view = allocator.views[node]
                held = set(view.local_cliques) | set(view.received_cliques)
                assert relevant <= held

    def test_simulator_loop_metrics(self):
        from repro.sim import Simulator

        with obs.using_registry() as reg:
            sim = Simulator()
            for i in range(5):
                sim.schedule(float(i + 1), lambda: None)
            sim.run_until(10.0)
        snap = reg.snapshot()
        assert snap["counters"]["sim.events"] == 5
        assert snap["gauges"]["sim.peak_queue_depth"] == 5
        assert snap["gauges"]["sim.queue_depth"] == 0
        assert snap["timers"]["sim.run_until"]["calls"] == 1

    def test_peak_queue_depth_without_registry(self):
        from repro.sim import Simulator

        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.peak_queue_depth == 7
        sim.run()
        assert sim.events_processed == 7
