"""A second round of property-based tests over the newer subsystems."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ContentionAnalysis, maxmin_subflow_rates
from repro.scenarios import (
    make_random_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

params = st.builds(
    dict,
    num_nodes=st.integers(8, 16),
    num_flows=st.integers(2, 4),
    seed=st.integers(0, 400),
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=params)
def test_maxmin_rates_feasible_and_maximal(params):
    """Max-min rates always respect every clique and cannot be raised:
    each subflow participates in at least one tight clique."""
    scenario = make_random_scenario(max_hops=4, **params)
    analysis = ContentionAnalysis(scenario)
    rates = maxmin_subflow_rates(analysis)
    loads = []
    for clique in analysis.cliques:
        load = sum(rates[s] for s in clique)
        assert load <= scenario.capacity + 1e-9
        loads.append((clique, load))
    for sid in analysis.subflow_ids():
        tight = any(
            sid in clique and load >= scenario.capacity - 1e-6
            for clique, load in loads
        )
        assert tight, f"{sid} could still grow"


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=params)
def test_serialization_round_trip_preserves_analysis(params):
    """JSON round-trip preserves the contention structure exactly."""
    scenario = make_random_scenario(max_hops=4, **params)
    clone = scenario_from_dict(scenario_to_dict(scenario))
    a = ContentionAnalysis(scenario)
    b = ContentionAnalysis(clone)
    assert set(a.cliques) == set(b.cliques)
    assert [sorted(f.flow_id for f in g) for g in a.groups] == [
        sorted(f.flow_id for f in g) for g in b.groups
    ]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=params, window=st.sampled_from([1.0, 2.0]))
def test_timeseries_totals_match_collector(params, window):
    """Windowed series counts always sum to the collector's totals."""
    from repro.mac.policies import DcfPolicy
    from repro.sched.runner import SimulationRun

    scenario = make_random_scenario(max_hops=3, **params)
    run = SimulationRun(scenario, lambda n, t: DcfPolicy(n, t),
                        seed=1, series_window_seconds=window)
    metrics = run.run(seconds=2.0)
    via_series = sum(sum(s) for s in metrics.series.counts.values())
    assert via_series == metrics.total_effective_throughput_packets()
