"""Tests for the scheduling policies: DCF backoff and the 2PA tag engine."""

import pytest

from repro.core.model import SubflowId
from repro.mac import DcfPolicy, FairBackoffPolicy, MacTimings
from repro.net.packet import DataPacket, TagInfo

T = MacTimings()


def packet(flow="1", hop=1, route=("a", "b", "c"), size=512, seq=1):
    return DataPacket(flow_id=flow, route=tuple(route), size_bytes=size,
                      created_at=0.0, seq=seq, hop=hop)


class TestDcfPolicy:
    def test_fifo_next_packet(self):
        pol = DcfPolicy("a", T)
        p1, p2 = packet(seq=1), packet(seq=2)
        pol.enqueue(p1, 0.0)
        pol.enqueue(p2, 0.0)
        assert pol.next_packet(0.0) is p1
        pol.on_success(p1, 1.0)
        assert pol.next_packet(1.0) is p2

    def test_binary_exponential_backoff(self):
        pol = DcfPolicy("a", T)
        p = packet()
        assert pol.backoff_window(p, 0, 0.0) == 31
        assert pol.backoff_window(p, 1, 0.0) == 63
        assert pol.backoff_window(p, 2, 0.0) == 127
        # Cap at CWmax.
        assert pol.backoff_window(p, 10, 0.0) == 1023

    def test_tags_are_none(self):
        pol = DcfPolicy("a", T)
        p = packet()
        pol.enqueue(p, 0.0)
        assert pol.tags_for(p, 0.0) is None
        assert pol.receiver_backoff_for("b", 0.0) is None

    def test_drop_removes(self):
        pol = DcfPolicy("a", T)
        p = packet()
        pol.enqueue(p, 0.0)
        pol.on_drop(p, 0.0)
        assert not pol.has_pending()
        assert pol.queued_packets() == 0


def fair_policy(shares=None, alpha=0.01, node="a"):
    shares = shares or {SubflowId("1", 1): 0.5, SubflowId("2", 1): 0.25}
    return FairBackoffPolicy(node, T, shares, alpha=alpha)


class TestFairBackoffQueueing:
    def test_node_share_is_sum(self):
        pol = fair_policy()
        assert pol.node_share == pytest.approx(0.75)

    def test_rejects_nonpositive_share(self):
        with pytest.raises(ValueError):
            FairBackoffPolicy("a", T, {SubflowId("1", 1): 0.0})

    def test_enqueue_unknown_subflow_raises(self):
        pol = fair_policy()
        with pytest.raises(KeyError):
            pol.enqueue(packet(flow="9"), 0.0)

    def test_empty_shares_allowed_for_receivers(self):
        pol = FairBackoffPolicy("dst", T, {})
        assert not pol.has_pending()

    def test_selection_by_internal_finish_tag(self):
        """The subflow with the larger share drains proportionally more."""
        pol = fair_policy()
        sid_a, sid_b = SubflowId("1", 1), SubflowId("2", 1)
        for i in range(12):
            pol.enqueue(packet(flow="1", route=("a", "b"), seq=i), 0.0)
            pol.enqueue(packet(flow="2", route=("a", "c"), seq=i), 0.0)
        sent = {sid_a: 0, sid_b: 0}
        for _ in range(9):
            p = pol.next_packet(0.0)
            sent[p.subflow] += 1
            pol.on_success(p, 0.0)
        # Shares 0.5 vs 0.25 -> 2:1 service ratio (6:3 over 9 packets).
        assert sent[sid_a] == 6
        assert sent[sid_b] == 3

    def test_virtual_clock_advances_by_external_tag(self):
        pol = fair_policy()
        p = packet(flow="1", route=("a", "b"))
        pol.enqueue(p, 0.0)
        assert pol.next_packet(0.0) is p
        pol.on_success(p, 0.0)
        # external finish tag = L / (node_share * data_rate)
        expected = 512 * 8 / (0.75 * T.data_rate)
        assert pol.virtual_clock == pytest.approx(expected)

    def test_internal_tag_uses_subflow_share(self):
        pol = fair_policy()
        p = packet(flow="2", route=("a", "c"))
        pol.enqueue(p, 0.0)
        pol.next_packet(0.0)
        state = pol._hol[SubflowId("2", 1)]
        assert state.internal_finish_tag == pytest.approx(
            512 * 8 / (0.25 * T.data_rate)
        )
        assert state.external_finish_tag == pytest.approx(
            512 * 8 / (0.75 * T.data_rate)
        )


class TestFairBackoffWindows:
    def test_no_neighbors_gives_cwmin(self):
        pol = fair_policy()
        p = packet(flow="1", route=("a", "b"))
        pol.enqueue(p, 0.0)
        assert pol.backoff_window(p, 0, 0.0) == pytest.approx(T.cw_min)

    def test_ahead_of_neighbors_backs_off_more(self):
        pol = fair_policy(alpha=0.01)
        p = packet(flow="1", route=("a", "b"))
        pol.enqueue(p, 0.0)
        pol.next_packet(0.0)
        # Fake progress: our clock far ahead of a neighbor's.
        pol.virtual_clock = 10_000.0
        pol._hol.clear()
        pol.on_overheard_tags(
            TagInfo("z", SubflowId("9", 1), 0.0), 0.0
        )
        window = pol.backoff_window(pol.next_packet(0.0), 0, 0.0)
        assert window == pytest.approx(T.cw_min + 10_000 * 0.01)

    def test_behind_neighbors_clamps_to_cwmin(self):
        pol = fair_policy(alpha=0.01)
        p = packet(flow="1", route=("a", "b"))
        pol.enqueue(p, 0.0)
        pol.on_overheard_tags(
            TagInfo("z", SubflowId("9", 1), 99_999.0), 0.0
        )
        window = pol.backoff_window(pol.next_packet(0.0), 0, 0.0)
        assert window == pytest.approx(T.cw_min)

    def test_window_capped(self):
        pol = FairBackoffPolicy(
            "a", T, {SubflowId("1", 1): 0.5}, alpha=1.0, max_window=100.0
        )
        p = packet(flow="1", route=("a", "b"))
        pol.enqueue(p, 0.0)
        pol.virtual_clock = 1e9
        pol.on_overheard_tags(TagInfo("z", SubflowId("9", 1), 0.0), 0.0)
        assert pol.backoff_window(pol.next_packet(0.0), 0, 0.0) == 100.0

    def test_ack_feedback_raises_window(self):
        pol = fair_policy(alpha=0.01)
        p = packet(flow="1", route=("a", "b"))
        pol.enqueue(p, 0.0)
        pol.on_ack_feedback(500.0, 0.0)
        window = pol.backoff_window(pol.next_packet(0.0), 0, 0.0)
        assert window == pytest.approx(T.cw_min + 500.0)

    def test_own_tags_ignored_in_table(self):
        pol = fair_policy()
        pol.on_overheard_tags(TagInfo("a", SubflowId("1", 1), 5.0), 0.0)
        assert pol.table == {}

    def test_subflowless_tags_ignored(self):
        pol = fair_policy()
        pol.on_overheard_tags(TagInfo("z", None, 5.0), 0.0)
        assert pol.table == {}


class TestReceiverBackoff:
    def test_r_value_definition(self):
        """R = sum over other table entries of (r_i - r_m) * alpha."""
        pol = fair_policy(alpha=0.01, node="recv")
        pol.on_overheard_tags(TagInfo("i", SubflowId("5", 1), 300.0), 0.0)
        pol.on_overheard_tags(TagInfo("m1", SubflowId("6", 1), 100.0), 0.0)
        pol.on_overheard_tags(TagInfo("m2", SubflowId("7", 1), 200.0), 0.0)
        r = pol.receiver_backoff_for("i", 0.0)
        assert r == pytest.approx(((300 - 100) + (300 - 200)) * 0.01)

    def test_unknown_sender_returns_none(self):
        pol = fair_policy()
        assert pol.receiver_backoff_for("stranger", 0.0) is None

    def test_latest_tag_per_sender_wins(self):
        pol = fair_policy(alpha=0.01, node="recv")
        pol.on_overheard_tags(TagInfo("i", SubflowId("5", 1), 100.0), 0.0)
        pol.on_overheard_tags(TagInfo("i", SubflowId("5", 1), 400.0), 0.0)
        pol.on_overheard_tags(TagInfo("m", SubflowId("6", 1), 0.0), 0.0)
        assert pol.receiver_backoff_for("i", 0.0) == pytest.approx(4.0)
