"""Tests for the multi-seed replication harness."""

import pytest

from repro.experiments import MetricStats, replicate_table
from repro.scenarios import fig1


class TestMetricStats:
    def test_single_value(self):
        s = MetricStats.from_values([5.0])
        assert s.mean == 5.0
        assert s.stdev == 0.0
        assert s.low == s.high == 5.0

    def test_spread(self):
        s = MetricStats.from_values([1.0, 3.0])
        assert s.mean == 2.0
        assert s.stdev == pytest.approx(2.0 ** 0.5)
        assert s.low == 1.0 and s.high == 3.0

    def test_str_format(self):
        assert "±" in str(MetricStats.from_values([1.0, 2.0]))


class TestReplication:
    @pytest.fixture(scope="class")
    def report(self):
        return replicate_table(
            fig1.make_scenario(), ["802.11", "2PA-C"],
            seeds=(1, 2, 3), duration=2.0,
        )

    def test_one_table_per_seed(self, report):
        assert len(report.tables) == 3
        assert report.seeds == [1, 2, 3]

    def test_stats_for_every_system(self, report):
        assert set(report.stats) == {"802.11", "2PA-C"}
        for system in report.systems:
            assert "total_effective" in report.stats[system]
            assert "u_1" in report.stats[system]

    def test_claim_holds_across_all_seeds(self, report):
        assert report.always_holds(
            lambda t: t.column("2PA-C").loss_ratio
            < t.column("802.11").loss_ratio
        )

    def test_seed_variability_is_bounded(self, report):
        """Replications differ (seeds matter) but only modestly."""
        stats = report.stat("2PA-C", "total_effective")
        assert stats.high > stats.low  # not identical
        assert stats.stdev < 0.1 * stats.mean

    def test_render(self, report):
        text = report.render()
        assert "3 replications" in text
        assert "802.11" in text

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate_table(fig1.make_scenario(), ["802.11"], seeds=())
