"""Tests for repro.traffic.openloop: seeded open-loop heavy traffic.

The trace contract mirrors ``ChurnTimeline``: draws are deterministic
per stream, serialization round-trips bit-for-bit, shrink candidates
are strictly smaller and structurally valid, and the statistics of the
drawn workload match the configured Poisson/Pareto mix closely enough
to prove the right distributions are wired in.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.contention import ContentionAnalysis
from repro.perf.shard import BatchAllocationEngine
from repro.scenarios import fig4
from repro.traffic import (
    ArrivalTrace,
    FlowArrival,
    OpenLoopConfig,
    draw_arrival_trace,
    drive_batch_engine,
)


@pytest.fixture(autouse=True)
def _no_active_registry():
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


FLOWS = ["1", "2", "3"]


class TestOpenLoopConfig:
    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            OpenLoopConfig(rate=-1.0)
        with pytest.raises(ValueError):
            OpenLoopConfig(tail_shape=1.0)
        with pytest.raises(ValueError):
            OpenLoopConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            OpenLoopConfig(diurnal_period=0)

    def test_rate_at_flat_without_diurnal(self):
        config = OpenLoopConfig(rate=3.0)
        assert all(config.rate_at(e) == 3.0 for e in range(48))

    def test_rate_at_oscillates_around_mean(self):
        config = OpenLoopConfig(
            rate=2.0, diurnal_amplitude=0.5, diurnal_period=24
        )
        rates = [config.rate_at(e) for e in range(24)]
        assert max(rates) > 2.0 > min(rates)
        assert np.mean(rates) == pytest.approx(2.0, abs=1e-9)
        # One full period: the curve repeats exactly.
        assert config.rate_at(0) == config.rate_at(24)


class TestDrawDeterminism:
    def test_same_stream_same_trace(self):
        a = draw_arrival_trace(np.random.default_rng(7), FLOWS, 20)
        b = draw_arrival_trace(np.random.default_rng(7), FLOWS, 20)
        assert a == b

    def test_different_seed_different_trace(self):
        a = draw_arrival_trace(np.random.default_rng(7), FLOWS, 20)
        b = draw_arrival_trace(np.random.default_rng(8), FLOWS, 20)
        assert a != b

    def test_flow_order_is_canonical(self):
        """The universe is sorted before indexing, so caller ordering
        cannot perturb which flow an index draw selects."""
        a = draw_arrival_trace(np.random.default_rng(3), ["b", "a", "c"], 16)
        b = draw_arrival_trace(np.random.default_rng(3), ["c", "b", "a"], 16)
        assert a == b

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            draw_arrival_trace(np.random.default_rng(0), [], 4)


class TestTraceStructure:
    def test_round_trip_to_dict(self):
        trace = draw_arrival_trace(np.random.default_rng(5), FLOWS, 12)
        assert ArrivalTrace.from_dict(trace.to_dict()) == trace

    def test_arrivals_sorted_and_in_horizon(self):
        trace = draw_arrival_trace(np.random.default_rng(5), FLOWS, 12)
        epochs = [a.epoch for a in trace.arrivals]
        assert epochs == sorted(epochs)
        assert all(0 <= e < trace.epochs for e in epochs)
        assert all(a.duration >= 1 for a in trace.arrivals)

    def test_validation_rejects_out_of_horizon(self):
        with pytest.raises(ValueError):
            ArrivalTrace(epochs=2, arrivals=(FlowArrival(5, "1"),))
        with pytest.raises(ValueError):
            ArrivalTrace(
                epochs=4,
                arrivals=(FlowArrival(2, "1"), FlowArrival(1, "2")),
            )
        with pytest.raises(ValueError):
            ArrivalTrace(
                epochs=4, arrivals=(FlowArrival(0, "1", duration=0),)
            )

    def test_poisson_mean_tracks_rate(self):
        config = OpenLoopConfig(rate=2.0)
        trace = draw_arrival_trace(
            np.random.default_rng(11), FLOWS, 500, config
        )
        assert trace.mean_rate == pytest.approx(2.0, rel=0.15)

    def test_durations_heavy_tailed_with_configured_mean(self):
        config = OpenLoopConfig(rate=2.0, duration_mean=4.0)
        trace = draw_arrival_trace(
            np.random.default_rng(13), FLOWS, 500, config
        )
        durations = [a.duration for a in trace.arrivals]
        assert np.mean(durations) == pytest.approx(4.0, rel=0.25)
        # Heavy tail: some service times far above the mean.
        assert max(durations) > 3 * 4.0


class TestShrink:
    def test_candidates_are_valid_and_strictly_smaller(self):
        trace = draw_arrival_trace(np.random.default_rng(21), FLOWS, 16)
        assert trace.offered > 1  # the draw actually produced work
        for candidate in trace.shrink_candidates():
            assert isinstance(candidate, ArrivalTrace)  # __post_init__ ran
            assert (
                candidate.offered < trace.offered
                or candidate.epochs < trace.epochs
            )

    def test_first_candidate_drops_everything(self):
        trace = draw_arrival_trace(np.random.default_rng(21), FLOWS, 16)
        first = next(iter(trace.shrink_candidates()))
        assert first.arrivals == ()

    def test_empty_trace_only_shrinks_its_horizon(self):
        trace = ArrivalTrace(epochs=4)
        assert list(trace.shrink_candidates()) == [ArrivalTrace(epochs=1)]
        assert list(ArrivalTrace(epochs=1).shrink_candidates()) == []


class TestDriveBatchEngine:
    def test_tally_accounts_for_every_arrival(self):
        analysis = ContentionAnalysis(fig4.make_scenario())
        engine = BatchAllocationEngine(analysis)
        flow_ids = sorted(f.flow_id for f in analysis.scenario.flows)
        trace = draw_arrival_trace(
            np.random.default_rng(2), flow_ids, 30,
            OpenLoopConfig(rate=1.5, duration_mean=3.0),
        )
        tally = drive_batch_engine(engine, trace)
        assert tally["offered"] == trace.offered
        assert (
            tally["admitted"] + tally["rejected"] + tally["duplicate"]
            == tally["offered"]
        )
        assert tally["released"] <= tally["admitted"]

    def test_flows_release_after_service_time(self):
        analysis = ContentionAnalysis(fig4.make_scenario())
        engine = BatchAllocationEngine(analysis)
        fid = sorted(f.flow_id for f in analysis.scenario.flows)[0]
        trace = ArrivalTrace(
            epochs=5, arrivals=(FlowArrival(0, fid, duration=2),)
        )
        tally = drive_batch_engine(engine, trace)
        assert tally == {
            "offered": 1, "admitted": 1, "rejected": 0,
            "duplicate": 0, "released": 1,
        }
        assert fid not in engine.active

    def test_reoffer_of_busy_flow_counts_as_duplicate(self):
        analysis = ContentionAnalysis(fig4.make_scenario())
        engine = BatchAllocationEngine(analysis)
        fid = sorted(f.flow_id for f in analysis.scenario.flows)[0]
        trace = ArrivalTrace(
            epochs=4,
            arrivals=(
                FlowArrival(0, fid, duration=4),
                FlowArrival(1, fid, duration=4),
            ),
        )
        tally = drive_batch_engine(engine, trace)
        assert tally["duplicate"] == 1
        assert tally["admitted"] == 1
