"""Tests for independent-set enumeration (used by schedulability)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    Graph,
    greedy_maximum_independent_set,
    independence_number,
    independent_sets_covering,
    maximal_independent_sets,
    to_networkx,
)


def pentagon():
    return Graph.from_edges([(i, (i + 1) % 5) for i in range(5)])


class TestMaximalIndependentSets:
    def test_pentagon_sets_have_size_two(self):
        sets = maximal_independent_sets(pentagon())
        assert len(sets) == 5
        assert all(len(s) == 2 for s in sets)

    def test_empty_graph(self):
        assert maximal_independent_sets(Graph()) == []

    def test_edgeless_graph_single_set(self):
        g = Graph()
        for i in range(4):
            g.add_vertex(i)
        sets = maximal_independent_sets(g)
        assert sets == [frozenset({0, 1, 2, 3})]

    @pytest.mark.parametrize("seed", range(5))
    def test_all_sets_independent_and_maximal(self, seed):
        rng = np.random.default_rng(seed)
        g = Graph()
        for i in range(10):
            g.add_vertex(i)
        for i in range(10):
            for j in range(i + 1, 10):
                if rng.random() < 0.4:
                    g.add_edge(i, j)
        for s in maximal_independent_sets(g):
            assert g.is_independent_set(s)
            # maximal: every vertex outside has a neighbor inside
            for v in g.vertices():
                if v not in s:
                    assert g.neighbors(v) & s, (v, s)


class TestIndependenceNumber:
    def test_pentagon_is_two(self):
        assert independence_number(pentagon()) == 2

    def test_matches_networkx_complement_clique(self):
        g = pentagon()
        comp = nx.complement(to_networkx(g))
        best = max(len(c) for c in nx.find_cliques(comp))
        assert independence_number(g) == best

    def test_empty(self):
        assert independence_number(Graph()) == 0


class TestGreedyMis:
    def test_result_is_independent(self):
        g = pentagon()
        s = greedy_maximum_independent_set(g)
        assert g.is_independent_set(s)
        assert len(s) == 2

    def test_star_graph_picks_leaves(self):
        g = Graph.from_edges([("hub", f"leaf{i}") for i in range(5)])
        s = greedy_maximum_independent_set(g)
        assert "hub" not in s
        assert len(s) == 5


def test_independent_sets_covering():
    g = pentagon()
    cover = independent_sets_covering(g, [0, 1])
    assert all(0 in s for s in cover[0])
    assert len(cover[0]) == 2  # {0,2} and {0,3}
