"""ParallelSweep: parallel results and reports bit-identical to serial,
ordered merging, and worker-metric folding."""

import json

from repro.experiments.ablations import scaling_study
from repro.obs.registry import MetricsRegistry, using_registry
from repro.perf.parallel import ParallelSweep, effective_jobs
from repro.scenarios.io import scenario_to_dict
from repro.scenarios.random_topology import random_scenario_sweep
from repro.verify.fuzzer import run_fuzz


def square(x):
    return x * x


def observe_task(x):
    from repro.obs.registry import incr, observe

    incr("perf.test.tasks")
    observe("perf.test.values", float(x))
    return -x


class TestEffectiveJobs:
    def test_defaults_to_all_cores(self):
        assert effective_jobs(None) >= 1
        assert effective_jobs(0) == effective_jobs(None)

    def test_explicit_and_clamped(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(-2) == 1


class TestMapSemantics:
    def test_order_preserved_serial_and_parallel(self):
        items = list(range(20))
        expected = [square(x) for x in items]
        assert ParallelSweep(1).map(square, items) == expected
        assert ParallelSweep(2).map(square, items) == expected

    def test_empty_and_single_item(self):
        assert ParallelSweep(4).map(square, []) == []
        assert ParallelSweep(4).map(square, [7]) == [49]

    def test_worker_metrics_folded_into_parent(self):
        items = [1.0, 2.0, 3.0, 4.0]
        with using_registry() as reg:
            out = ParallelSweep(2).map(observe_task, items)
        assert out == [-1.0, -2.0, -3.0, -4.0]
        assert reg.counters["perf.test.tasks"].value == len(items)
        assert sorted(reg.histograms["perf.test.values"].values) == items


class TestRegistryMerge:
    def test_merge_snapshot_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        worker.gauge("g").set(2.5)
        worker.histogram("h").observe(1.0)
        worker.histogram("h").observe(4.0)
        worker.timer("t").add(wall_s=0.5, cpu_s=0.25, calls=2)

        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.merge_snapshot(worker.mergeable_snapshot())
        assert parent.counters["c"].value == 4
        assert parent.gauges["g"].value == 2.5
        assert parent.histograms["h"].values == [1.0, 4.0]
        assert parent.timers["t"].calls == 2
        assert parent.timers["t"].wall_s == 0.5

    def test_summary_histograms_skipped_not_fabricated(self):
        parent = MetricsRegistry()
        parent.merge_snapshot({"histograms": {"h": {"count": 3}}})
        assert "h" not in parent.histograms


class TestSweepBitIdentity:
    def test_fuzz_report_parallel_equals_serial(self):
        serial = run_fuzz(cases=5, seed=11, jobs=1)
        parallel = run_fuzz(cases=5, seed=11, jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(parallel.to_dict(), sort_keys=True)

    def test_fuzz_injected_fault_parallel_equals_serial(self):
        serial = run_fuzz(cases=3, seed=2, inject_fault=True,
                          max_failures=2, jobs=1)
        parallel = run_fuzz(cases=3, seed=2, inject_fault=True,
                            max_failures=2, jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(parallel.to_dict(), sort_keys=True)
        assert serial.failures  # the fault was caught in both runs

    def test_scaling_study_parallel_equals_serial(self):
        serial = scaling_study(sizes=(10, 12), jobs=1)
        parallel = scaling_study(sizes=(10, 12), jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(parallel.to_dict(), sort_keys=True)

    def test_random_scenario_sweep_parallel_equals_serial(self):
        params = [
            {"num_nodes": 10, "num_flows": 3, "seed": 1},
            {"num_nodes": 12, "num_flows": 4, "seed": 2},
        ]
        serial = random_scenario_sweep(params, jobs=1)
        parallel = random_scenario_sweep(params, jobs=2)
        assert [scenario_to_dict(s) for s in serial] == \
            [scenario_to_dict(s) for s in parallel]
