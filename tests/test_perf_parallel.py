"""ParallelSweep: parallel results and reports bit-identical to serial,
ordered merging, and worker-metric folding."""

import json

from repro.experiments.ablations import scaling_study
from repro.obs.registry import MetricsRegistry, using_registry
from repro.perf.parallel import ParallelSweep, effective_jobs
from repro.scenarios.io import scenario_to_dict
from repro.scenarios.random_topology import random_scenario_sweep
from repro.verify.fuzzer import run_fuzz


def square(x):
    return x * x


def observe_task(x):
    from repro.obs.registry import incr, observe

    incr("perf.test.tasks")
    observe("perf.test.values", float(x))
    return -x


class TestEffectiveJobs:
    def test_defaults_to_all_cores(self):
        assert effective_jobs(None) >= 1
        assert effective_jobs(0) == effective_jobs(None)

    def test_explicit_and_clamped(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(-2) == 1


class TestMapSemantics:
    def test_order_preserved_serial_and_parallel(self):
        items = list(range(20))
        expected = [square(x) for x in items]
        assert ParallelSweep(1).map(square, items) == expected
        assert ParallelSweep(2).map(square, items) == expected

    def test_empty_and_single_item(self):
        assert ParallelSweep(4).map(square, []) == []
        assert ParallelSweep(4).map(square, [7]) == [49]

    def test_worker_metrics_folded_into_parent(self):
        items = [1.0, 2.0, 3.0, 4.0]
        with using_registry() as reg:
            out = ParallelSweep(2).map(observe_task, items)
        assert out == [-1.0, -2.0, -3.0, -4.0]
        assert reg.counters["perf.test.tasks"].value == len(items)
        assert sorted(reg.histograms["perf.test.values"].values) == items


class TestRegistryMerge:
    def test_merge_snapshot_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        worker.gauge("g").set(2.5)
        worker.histogram("h").observe(1.0)
        worker.histogram("h").observe(4.0)
        worker.timer("t").add(wall_s=0.5, cpu_s=0.25, calls=2)

        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.merge_snapshot(worker.mergeable_snapshot())
        assert parent.counters["c"].value == 4
        assert parent.gauges["g"].value == 2.5
        assert parent.histograms["h"].values == [1.0, 4.0]
        assert parent.timers["t"].calls == 2
        assert parent.timers["t"].wall_s == 0.5

    def test_summary_histograms_skipped_not_fabricated(self):
        parent = MetricsRegistry()
        parent.merge_snapshot({"histograms": {"h": {"count": 3}}})
        assert "h" not in parent.histograms


class TestSweepBitIdentity:
    def test_fuzz_report_parallel_equals_serial(self):
        serial = run_fuzz(cases=5, seed=11, jobs=1)
        parallel = run_fuzz(cases=5, seed=11, jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(parallel.to_dict(), sort_keys=True)

    def test_fuzz_injected_fault_parallel_equals_serial(self):
        serial = run_fuzz(cases=3, seed=2, inject_fault=True,
                          max_failures=2, jobs=1)
        parallel = run_fuzz(cases=3, seed=2, inject_fault=True,
                            max_failures=2, jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(parallel.to_dict(), sort_keys=True)
        assert serial.failures  # the fault was caught in both runs

    def test_scaling_study_parallel_equals_serial(self):
        serial = scaling_study(sizes=(10, 12), jobs=1)
        parallel = scaling_study(sizes=(10, 12), jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(parallel.to_dict(), sort_keys=True)

    def test_random_scenario_sweep_parallel_equals_serial(self):
        params = [
            {"num_nodes": 10, "num_flows": 3, "seed": 1},
            {"num_nodes": 12, "num_flows": 4, "seed": 2},
        ]
        serial = random_scenario_sweep(params, jobs=1)
        parallel = random_scenario_sweep(params, jobs=2)
        assert [scenario_to_dict(s) for s in serial] == \
            [scenario_to_dict(s) for s in parallel]


# ---------------------------------------------------------------------------
# Guarded sweep: crash/hang detection, bounded retry, serial fallback.
# The fault helpers are module-level (pool workers must pickle them) and
# count attempts in a token file so behaviour survives worker restarts.
# ---------------------------------------------------------------------------

def _attempt(token_path):
    import os

    with open(os.fspath(token_path), "a+", encoding="utf-8") as fh:
        fh.seek(0)
        prior = sum(1 for _ in fh)
        fh.write("x\n")
        fh.flush()
    return prior


def square_payload(payload):
    _token, x = payload
    return x * x


def hang_once(payload):
    import time

    token, x = payload
    if x == 0 and _attempt(token) < 1:
        time.sleep(30)
    return x * x


def crash_once(payload):
    import os

    token, x = payload
    if x == 0 and _attempt(token) < 1:
        os._exit(23)
    return x * x


def crash_always(payload):
    import os

    _token, x = payload
    if x == 0:
        os._exit(23)
    return x * x


def fail_on_even(x):
    if x % 2 == 0:
        raise ValueError(f"bad item {x}")
    return x


class TestGuardedFaultTolerance:
    def test_no_fault_guarded_run_matches_classic(self):
        items = list(range(8))
        classic = ParallelSweep(2).map(square, items)
        guarded = ParallelSweep(2, task_timeout=30.0, task_retries=2).map(
            square, items, serial_fn=square
        )
        assert guarded == classic == [x * x for x in items]

    def test_hung_task_times_out_and_retries(self, tmp_path):
        token = str(tmp_path / "hang.tokens")
        items = [(token, x) for x in range(3)]
        sweep = ParallelSweep(2, task_timeout=0.5, task_retries=2)
        with using_registry() as reg:
            out = sweep.map(hang_once, items, serial_fn=square_payload)
        assert out == [0, 1, 4]
        assert reg.counters["perf.parallel.task_timeouts"].value >= 1
        assert reg.counters["perf.parallel.task_retries"].value >= 1

    def test_crashed_worker_is_detected_and_retried(self, tmp_path):
        token = str(tmp_path / "crash.tokens")
        items = [(token, x) for x in range(3)]
        sweep = ParallelSweep(2, task_timeout=30.0, task_retries=2)
        with using_registry() as reg:
            out = sweep.map(crash_once, items, serial_fn=square_payload)
        assert out == [0, 1, 4]
        assert reg.counters["perf.parallel.task_crashes"].value >= 1
        assert reg.counters["perf.parallel.task_retries"].value >= 1

    def test_exhausted_retries_use_serial_fallback(self, tmp_path):
        token = str(tmp_path / "always.tokens")
        items = [(token, x) for x in range(3)]
        sweep = ParallelSweep(2, task_timeout=30.0, task_retries=1,
                              retry_backoff_s=0.01)
        with using_registry() as reg:
            out = sweep.map(crash_always, items, serial_fn=square_payload)
        assert out == [0, 1, 4]
        assert reg.counters["perf.parallel.serial_fallbacks"].value >= 1

    def test_task_exception_is_not_retried_and_raises_lowest_index(self):
        sweep = ParallelSweep(2, task_timeout=30.0, task_retries=3)
        with using_registry() as reg:
            try:
                sweep.map(fail_on_even, [1, 2, 3, 4], serial_fn=fail_on_even)
            except ValueError as exc:
                assert str(exc) == "bad item 2"  # lowest failing index
            else:
                raise AssertionError("expected ValueError")
            assert "perf.parallel.task_retries" not in reg.counters

    def test_serial_jobs_with_serial_fn_stays_in_process(self):
        """jobs=1 never spins a pool even on the guarded path."""
        with using_registry() as reg:
            out = ParallelSweep(1, task_timeout=1.0).map(
                square, [1, 2, 3], serial_fn=square
            )
        assert out == [1, 4, 9]
        assert reg.counters["perf.parallel.serial_runs"].value == 1
        assert "perf.parallel.pool_runs" not in reg.counters
