"""Tests for repro.resilience.runtime: the long-lived allocator.

The runtime's contract: every committed epoch satisfies Eq. (6) and the
Sec. II-D basic-share floor for the flows it admitted; churn (link/node
outages, flow arrivals/departures) moves flows between active, queued,
and suspended with machine-readable reasons; and the whole state machine
is deterministic per ``(scenario, config, events)``.
"""

import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.resilience import (
    ADMIT,
    QUEUE,
    REJECT,
    AllocatorRuntime,
    ChurnEvent,
    ChurnTimeline,
    RuntimeConfig,
    global_basic_shares,
    run_churn,
)
from repro.resilience.admission import (
    REASON_ENDPOINT_DOWN,
    REASON_QUEUE_FULL,
    REASON_UNROUTABLE,
)
from repro.scenarios import fig1, fig4, fig6, grid_scenario
from repro.verify.invariants import check_clique_capacity


@pytest.fixture(autouse=True)
def _no_active_registry():
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


def _flow_up(epoch, *flows):
    return [ChurnEvent(epoch, "flow-up", flow=f) for f in flows]


class TestEpochPipeline:
    def test_initial_epoch_matches_pinned_allocation(self):
        runtime = AllocatorRuntime(fig1.make_scenario())
        record = runtime.advance(_flow_up(0, "1", "2"))
        assert runtime.epoch == 0
        assert record.epoch == 0
        assert record.status == "converged"
        assert record.ok, record.failed_checks()
        # Fig. 1's known optimum: r_1 = 0.50, r_2 = 0.25.
        assert record.shares["1"] == pytest.approx(0.5)
        assert record.shares["2"] == pytest.approx(0.25)
        assert [d["action"] for d in record.admissions] == [ADMIT, ADMIT]
        assert runtime.journal == [record]

    def test_link_outage_suspends_then_heals_and_readmits(self):
        runtime = AllocatorRuntime(fig1.make_scenario())
        runtime.advance(_flow_up(0, "1", "2"))

        # Link B-C breaks: flow 1 (A-B-C) has no alternate path in
        # Fig. 1, so it is suspended into the queue with a reason, and
        # flow 2 alone expands to its lone-flow optimum.
        down = runtime.advance(
            [ChurnEvent(1, "link-down", link=("B", "C"))]
        )
        assert down.suspended == ["1"]
        assert down.active == ["2"]
        assert down.queued == ["1"]
        assert down.shares["2"] == pytest.approx(0.5)
        (decision,) = down.admissions
        assert decision["flow"] == "1"
        assert decision["action"] == QUEUE
        assert decision["reason"] == REASON_UNROUTABLE

        # The link heals: the queued flow is readmitted FIFO and the
        # allocation returns to the two-flow optimum.
        healed = runtime.advance(
            [ChurnEvent(2, "link-up", link=("B", "C"))]
        )
        assert healed.active == ["1", "2"]
        assert healed.queued == []
        (readmit,) = healed.admissions
        assert (readmit["flow"], readmit["action"]) == ("1", ADMIT)
        assert healed.shares["1"] == pytest.approx(0.5)
        assert healed.shares["2"] == pytest.approx(0.25)

    def test_node_outage_triggers_dsr_reroute(self):
        """Grid flow 1 (g00-g01-g02-g03) survives losing g01 via a DSR
        repair route; the repaired epoch still passes its checks."""
        scenario = grid_scenario()
        runtime = AllocatorRuntime(scenario)
        runtime.advance(_flow_up(0, "1", "2"))
        record = runtime.advance(
            [ChurnEvent(1, "node-down", node="g01")]
        )
        assert record.rerouted == ["1"]
        assert record.suspended == []
        assert record.active == ["1", "2"]
        assert record.ok, record.failed_checks()
        analysis = runtime.current_analysis()
        (repaired,) = [f for f in analysis.scenario.flows
                       if f.flow_id == "1"]
        assert "g01" not in repaired.path
        assert check_clique_capacity(analysis, record.shares).ok

    def test_unknown_event_entities_are_skipped_not_fatal(self):
        """Shrunk reproducers may reference entities a scenario shrink
        removed; the runtime counts and skips them."""
        runtime = AllocatorRuntime(fig1.make_scenario())
        record = runtime.advance(
            _flow_up(0, "1", "2")
            + [
                ChurnEvent(0, "flow-up", flow="99"),
                ChurnEvent(0, "node-down", node="ZZ"),
                ChurnEvent(0, "link-down", link=("ZZ", "QQ")),
            ]
        )
        assert record.skipped_events == 3
        assert record.active == ["1", "2"]
        assert len(record.events) == 2  # only the applied ones journal

    def test_set_active_diffs_and_memoizes(self):
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            scenario = fig4.make_scenario()
            runtime = AllocatorRuntime(
                scenario, RuntimeConfig(admission=False)
            )
            first = runtime.set_active(["1", "2", "3", "4"])
            runtime.set_active(["1", "3"])
            again = runtime.set_active(["1", "2", "3", "4"])
        finally:
            obs.set_registry(None)
        assert runtime.epoch == 2
        assert again == first  # bitwise: served from the memo
        counters = registry.snapshot()["counters"]
        assert counters["runtime.alloc.memo_hits"] >= 1
        assert counters["runtime.epoch.committed"] == 3

    def test_set_active_rejects_unknown_flows(self):
        runtime = AllocatorRuntime(fig1.make_scenario())
        with pytest.raises(KeyError, match="unknown flows"):
            runtime.set_active(["1", "nope"])

    def test_advance_is_deterministic(self):
        """Same scenario, config, and events → identical journals."""
        timeline = ChurnTimeline(
            epochs=4,
            initial_active=("1", "2"),
            events=(
                ChurnEvent(1, "link-down", link=("B", "C")),
                ChurnEvent(2, "link-up", link=("B", "C")),
                ChurnEvent(3, "flow-down", flow="2"),
            ),
        )
        journals = []
        for _ in range(2):
            runtime = AllocatorRuntime(
                fig1.make_scenario(), RuntimeConfig(seed=5)
            )
            runtime.run_timeline(timeline)
            journals.append([r.to_dict() for r in runtime.journal])
        assert journals[0] == journals[1]


class TestHysteresis:
    def test_transitions_are_rate_limited_and_converge(self):
        """Joining the full Fig. 6 set moves every flow's share by at
        most a factor ``1 ± h`` per epoch (above its floor) until the
        allocation settles at the new optimum — no flapping."""
        h = 0.25
        runtime = AllocatorRuntime(
            fig6.make_scenario(),
            RuntimeConfig(admission=False, hysteresis=h),
        )
        runtime.set_active(["4", "5"])
        prev = dict(runtime.shares)
        assert prev["5"] == pytest.approx(1 / 3)
        saw_damped = False
        for _ in range(8):
            runtime.set_active(["1", "2", "3", "4", "5"])
            record = runtime.journal[-1]
            assert record.ok, record.failed_checks()
            for fid in ("4", "5"):  # flows with a rate to protect
                assert runtime.shares[fid] <= prev[fid] * (1 + h) + 1e-12
                assert runtime.shares[fid] >= prev[fid] * (1 - h) - 1e-12
            saw_damped = saw_damped or record.damped
            prev = dict(runtime.shares)
        assert saw_damped
        # Geometric climb reaches the full-set optimum exactly.
        assert prev["5"] == pytest.approx(0.75)
        assert prev["4"] == pytest.approx(0.125)
        assert not runtime.journal[-1].damped  # converged: no clamping

    def test_damped_epochs_still_pass_the_paper_checks(self):
        """Damping a crash from 1.0 down to the crowded optimum cannot
        be honoured smoothly (Eq. (6) binds); the committed allocation
        must satisfy Eq. (6) and the floors anyway."""
        runtime = AllocatorRuntime(
            fig1.make_scenario(),
            RuntimeConfig(admission=False, hysteresis=0.05),
        )
        runtime.set_active(["2"])
        assert runtime.shares["2"] == pytest.approx(0.5)
        for _ in range(3):
            runtime.set_active(["1", "2"])
            record = runtime.journal[-1]
            assert record.ok, record.failed_checks()
        analysis = runtime.current_analysis()
        floors = global_basic_shares(analysis)
        for fid, floor in floors.items():
            assert runtime.shares[fid] >= floor - 1e-9


class TestRuntimeAdmission:
    def test_dead_endpoint_arrival_queues_with_reason(self):
        runtime = AllocatorRuntime(fig1.make_scenario())
        runtime.advance(_flow_up(0, "2"))
        record = runtime.advance(
            [ChurnEvent(1, "node-down", node="A")] + _flow_up(1, "1")
        )
        (decision,) = record.admissions
        assert decision["action"] == QUEUE
        assert decision["reason"] == REASON_ENDPOINT_DOWN
        assert record.active == ["2"]
        assert record.queued == ["1"]

        # The node rejoins: the queued flow enters without being asked.
        healed = runtime.advance([ChurnEvent(2, "node-up", node="A")])
        assert healed.active == ["1", "2"]
        assert healed.queued == []

    def test_full_queue_rejects_with_queue_full_reason(self):
        runtime = AllocatorRuntime(
            fig1.make_scenario(), RuntimeConfig(max_queue=0)
        )
        runtime.advance(_flow_up(0, "2"))
        record = runtime.advance(
            [ChurnEvent(1, "node-down", node="A")] + _flow_up(1, "1")
        )
        (decision,) = record.admissions
        assert decision["action"] == REJECT
        assert decision["reason"] == REASON_QUEUE_FULL
        assert REASON_ENDPOINT_DOWN in decision["details"]
        assert record.queued == []

    def test_admission_off_still_gates_on_routing(self):
        """``admission=False`` disables the floor predicate, never the
        physical one: a flow with no path cannot be activated."""
        runtime = AllocatorRuntime(
            fig1.make_scenario(), RuntimeConfig(admission=False)
        )
        record = runtime.advance(
            [ChurnEvent(0, "node-down", node="A")] + _flow_up(0, "1", "2")
        )
        assert record.active == ["2"]
        by_flow = {d["flow"]: d for d in record.admissions}
        assert by_flow["1"]["reason"] == REASON_ENDPOINT_DOWN
        assert by_flow["2"]["reason"] == "ok"

    def test_departed_flow_leaves_the_waiting_queue(self):
        runtime = AllocatorRuntime(fig1.make_scenario())
        runtime.advance(_flow_up(0, "2"))
        runtime.advance(
            [ChurnEvent(1, "node-down", node="A")] + _flow_up(1, "1")
        )
        assert list(runtime.admission.waiting) == ["1"]
        record = runtime.advance(
            [ChurnEvent(2, "flow-down", flow="1")]
        )
        assert record.queued == []
        # Healing afterwards must NOT resurrect the departed flow.
        healed = runtime.advance([ChurnEvent(3, "node-up", node="A")])
        assert healed.active == ["2"]


class TestChurnCampaign:
    def test_small_campaign_holds_invariants(self):
        report = run_churn(
            cases=2, seed=0, loss_rates=(0.0, 0.2), epochs=6
        )
        assert report.ok, [v.to_dict() for v in report.violations]
        # statuses tally per committed epoch: 2 cases × 2 rates × 6.
        assert sum(report.statuses.values()) == 24
        assert report.epochs_run == 24
        assert report.checks["churn.crash_restore_identical"]["fail"] == 0
        assert report.checks["churn.epoch_checks"]["fail"] == 0
        assert report.admissions[ADMIT] >= 1
        rendered = report.render()
        assert "all churn safety invariants held" in rendered

    def test_injected_fault_is_caught(self):
        report = run_churn(
            cases=2, seed=0, loss_rates=(0.0,), epochs=5,
            inject_fault=True, max_violations=2,
        )
        assert not report.ok
        violation = report.violations[0]
        assert violation.check in (
            "churn.final_clique_capacity", "churn.final_basic_floor"
        )
        # Violations carry a replayable timeline next to the scenario.
        timeline = ChurnTimeline.from_dict(violation.churn_timeline)
        assert timeline.to_dict() == violation.churn_timeline
        assert violation.scenario["flows"]

    def test_report_round_trips_to_dict(self):
        report = run_churn(cases=2, seed=1, loss_rates=(0.0,), epochs=4)
        doc = report.to_dict()
        assert doc["ok"] is report.ok
        assert doc["cases"] == 2
        assert set(doc["checks"]) == set(report.checks)
        assert doc["epochs_run"] == report.epochs_run
