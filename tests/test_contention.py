"""Tests for the contention model against the paper's figures."""

import pytest

from repro.core import (
    ContentionAnalysis,
    Flow,
    Network,
    Scenario,
    SubflowId,
    contending_flow_groups,
    flows_contend,
    subflow_contention_graph,
    subflows_contend,
)
from repro.scenarios import fig1, fig6


def sids(clique):
    return sorted(str(s) for s in clique)


class TestPairwiseContention:
    def test_adjacent_hops_always_contend(self):
        net = Network.from_positions(
            {"a": (0, 0), "b": (200, 0), "c": (400, 0)}
        )
        f = Flow("1", ["a", "b", "c"])
        s1, s2 = f.subflows
        assert subflows_contend(net, s1, s2)

    def test_subflow_never_contends_with_itself(self):
        net = Network.from_positions({"a": (0, 0), "b": (200, 0)})
        s = Flow("1", ["a", "b"]).subflows[0]
        assert not subflows_contend(net, s, s)

    def test_far_subflows_do_not_contend(self):
        net = Network.from_positions(
            {"a": (0, 0), "b": (200, 0), "x": (2000, 0), "y": (2200, 0)}
        )
        fa = Flow("1", ["a", "b"]).subflows[0]
        fb = Flow("2", ["x", "y"]).subflows[0]
        assert not subflows_contend(net, fa, fb)
        assert not flows_contend(net, Flow("1", ["a", "b"]),
                                 Flow("2", ["x", "y"]))

    def test_receiver_side_contention(self):
        # receivers within range, senders far apart
        net = Network.from_positions(
            {"s1": (0, 0), "r1": (240, 0), "r2": (430, 0),
             "s2": (670, 0)}
        )
        fa = Flow("1", ["s1", "r1"]).subflows[0]
        fb = Flow("2", ["s2", "r2"]).subflows[0]
        assert net.in_range("r1", "r2")
        assert not net.in_range("s1", "s2")
        assert subflows_contend(net, fa, fb)


class TestFig1Structure:
    def test_cliques(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        cliques = sorted(sids(c) for c in analysis.cliques)
        assert cliques == [["F1.1", "F1.2"], ["F1.2", "F2.1", "F2.2"]]

    def test_coefficients(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        coeffs = analysis.all_coefficients()
        assert {"1": 1, "2": 2} in coeffs
        assert {"1": 2} in coeffs

    def test_single_group(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        assert len(analysis.groups) == 1
        assert {f.flow_id for f in analysis.groups[0]} == {"1", "2"}

    def test_weighted_clique_number(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        assert analysis.weighted_clique_number() == 3.0


class TestFig6Structure:
    def test_exactly_the_papers_six_cliques(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        cliques = sorted(sids(c) for c in analysis.cliques)
        assert cliques == [
            ["F1.1", "F1.2", "F1.3"],
            ["F1.2", "F1.3", "F1.4"],
            ["F1.3", "F1.4", "F2.1"],
            ["F2.1", "F3.1"],
            ["F3.1", "F4.1"],
            ["F4.1", "F4.2", "F5.1"],
        ]

    def test_no_flow_shortcuts(self):
        scenario = fig6.make_scenario()
        for flow in scenario.flows:
            assert not scenario.network.has_shortcut(flow)

    def test_single_contending_group(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        assert len(analysis.groups) == 1

    def test_group_of(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        group = analysis.group_of("3")
        assert {f.flow_id for f in group} == {"1", "2", "3", "4", "5"}
        with pytest.raises(KeyError):
            analysis.group_of("99")


class TestGroups:
    def test_disjoint_regions_split_groups(self):
        net = Network.from_positions({
            "a": (0, 0), "b": (200, 0),
            "x": (5000, 0), "y": (5200, 0),
        })
        flows = [Flow("1", ["a", "b"]), Flow("2", ["x", "y"])]
        groups = contending_flow_groups(net, flows)
        assert len(groups) == 2

    def test_transitive_grouping(self):
        # 1 contends with 2, 2 with 3, but 1 not with 3 -> one group.
        net = Network.from_positions({
            "a": (0, 0), "b": (200, 0),
            "c": (430, 0), "d": (630, 0),
            "e": (860, 0), "f": (1060, 0),
        })
        flows = [Flow("1", ["a", "b"]), Flow("2", ["c", "d"]),
                 Flow("3", ["e", "f"])]
        assert flows_contend(net, flows[0], flows[1])
        assert flows_contend(net, flows[1], flows[2])
        assert not flows_contend(net, flows[0], flows[2])
        groups = contending_flow_groups(net, flows)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_graph_vertices_carry_weights(self):
        net = Network.from_positions({"a": (0, 0), "b": (200, 0)})
        g = subflow_contention_graph(net, [Flow("1", ["a", "b"], 2.5)])
        assert g.attr(SubflowId("1", 1), "weight") == 2.5
        assert g.attr(SubflowId("1", 1), "flow") == "1"
