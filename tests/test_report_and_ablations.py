"""Tests for the report builder and the extended ablation studies."""

import pytest

from repro.cli import main
from repro.experiments import build_report
from repro.experiments.ablations import (
    ALL_ABLATIONS,
    convergence_study,
    mac_fidelity_study,
)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(include_simulations=False)

    def test_sections_present(self, report):
        text = report.render()
        assert "REPRODUCTION REPORT" in text
        assert "SCENARIO 1" in text
        assert "WORKED EXAMPLES" in text
        assert "Table I" in text

    def test_examples_all_ok(self, report):
        text = report.render()
        assert "FAIL" not in text
        assert text.count("[OK ]") == 6

    def test_simulation_sections_optional(self, report):
        assert "Table II" not in report.render()

    def test_with_simulations(self):
        report = build_report(duration=1.0, include_simulations=True)
        text = report.render()
        assert "Table II" in text
        assert "paper Table III" in text


class TestConvergenceStudy:
    def test_converges_quickly_at_reasonable_alpha(self):
        sweep = convergence_study(alphas=(0.001,), duration=8.0,
                                  window=2.0)
        point = sweep.points[0]
        assert point.values["converged_window"] >= 0  # did converge
        assert point.values["converged_second"] <= 4.0


class TestMacFidelityStudy:
    @pytest.fixture(scope="class")
    def sweep(self):
        return mac_fidelity_study(duration=3.0)

    def test_four_variants(self, sweep):
        assert [p.parameter for p in sweep.points] == [0.0, 1.0, 2.0, 3.0]

    def test_2pa_loss_advantage_robust_to_modelling(self, sweep):
        """The headline claim survives EIFS and capture variants."""
        for point in sweep.points:
            assert (point.values["tpa_loss_ratio"]
                    < 0.2 * point.values["dcf_loss_ratio"]), point


class TestAblationRegistry:
    def test_all_names_registered(self):
        assert set(ALL_ABLATIONS) == {
            "alpha", "cwmin", "buffer", "virtual-length", "scaling",
            "convergence", "mac-fidelity",
        }


class TestCliExtensions:
    def test_report_subcommand(self, capsys):
        assert main(["report", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCTION REPORT" in out

    def test_ablation_subcommand(self, capsys):
        assert main(["ablation", "virtual-length"]) == 0
        assert "Virtual-length" in capsys.readouterr().out
