"""Tests for the ideal TDMA reference system."""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
)
from repro.sched.tdma import TdmaSimulation, TdmaWindow, build_tdma
from repro.sched import build_2pa
from repro.scenarios import fig1, fig5, fig6


class TestScheduleConstruction:
    def test_windows_sum_to_at_most_one(self):
        tdma = build_tdma(fig1.make_scenario())
        total = sum(w.fraction for w in tdma.windows)
        assert total <= 1.0 + 1e-9

    def test_windows_are_independent_sets(self):
        scenario = fig6.make_scenario()
        tdma = build_tdma(scenario)
        analysis = ContentionAnalysis(scenario)
        for window in tdma.windows:
            assert analysis.graph.is_independent_set(window.members)

    def test_infeasible_allocation_normalized(self):
        analysis = fig5.make_analysis()
        allocation = basic_fairness_lp_allocation(analysis)
        tdma = TdmaSimulation(analysis.scenario, allocation,
                              analysis=analysis)
        total = sum(w.fraction for w in tdma.windows)
        assert total == pytest.approx(1.0, abs=1e-6)


class TestExecution:
    @pytest.fixture(scope="class")
    def fig1_metrics(self):
        return build_tdma(fig1.make_scenario()).run(seconds=10.0)

    def test_zero_losses(self, fig1_metrics):
        assert fig1_metrics.total_lost_packets() == 0

    def test_perfect_intra_flow_balance(self, fig1_metrics):
        assert fig1_metrics.subflow_count("1", 1) == pytest.approx(
            fig1_metrics.subflow_count("1", 2), abs=2
        )

    def test_allocation_ratios_exact(self, fig1_metrics):
        u1 = fig1_metrics.flows["1"].delivered_end_to_end
        u2 = fig1_metrics.flows["2"].delivered_end_to_end
        assert u1 / u2 == pytest.approx(2.0, rel=0.05)

    def test_tdma_beats_csma_2pa(self):
        """Perfect coordination strictly outperforms random access."""
        scenario = fig1.make_scenario()
        tdma = build_tdma(scenario).run(seconds=5.0)
        csma = build_2pa(scenario, "centralized", seed=1).run.run(5.0)
        assert (tdma.total_effective_throughput_packets()
                > csma.total_effective_throughput_packets())
        assert tdma.total_lost_packets() <= csma.total_lost_packets()

    def test_offered_load_caps_throughput(self):
        """Flows cannot exceed their CBR offered rate (fig6's F3/F5)."""
        metrics = build_tdma(fig6.make_scenario()).run(seconds=10.0)
        for fid in ("3", "5"):
            assert metrics.flows[fid].delivered_end_to_end <= 2001

    def test_backpressure_prevents_relay_drops(self):
        metrics = build_tdma(fig6.make_scenario()).run(seconds=10.0)
        assert metrics.total_lost_packets() == 0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            build_tdma(fig1.make_scenario()).run(seconds=0)

    def test_pentagon_runs_at_scaled_shares(self):
        analysis = fig5.make_analysis()
        allocation = basic_fairness_lp_allocation(analysis)
        tdma = TdmaSimulation(analysis.scenario, allocation,
                              analysis=analysis)
        metrics = tdma.run(seconds=5.0)
        # Scaled to 2B/5 each = 0.4 x 425 pkt/s (with header overhead)
        # but CBR caps at 200/s; every flow gets the same service.
        counts = [m.delivered_end_to_end for m in metrics.flows.values()]
        assert max(counts) - min(counts) <= 10
        assert min(counts) > 500

    def test_guard_time_reduces_throughput(self):
        scenario = fig1.make_scenario()
        tight = build_tdma(scenario).run(seconds=3.0)
        loose = build_tdma(scenario, guard_us=500.0).run(seconds=3.0)
        assert (loose.total_effective_throughput_packets()
                < tight.total_effective_throughput_packets())
