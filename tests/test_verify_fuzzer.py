"""Fuzz harness: generation determinism, the suite, shrinking, fault
injection (the generate → check → shrink → serialize loop end to end)."""

import json

import pytest

from repro.scenarios.io import scenario_from_dict, scenario_to_dict
from repro.sim.rng import RngRegistry
from repro.verify import (
    VerificationSuite,
    generate_scenario,
    inject_share_fault,
    run_fuzz,
    shrink_scenario,
)
from repro.verify.fuzzer import FAIL, PASS


class TestGeneration:
    def test_deterministic_per_seed_and_index(self):
        a = generate_scenario(RngRegistry(7), 3)
        b = generate_scenario(RngRegistry(7), 3)
        assert scenario_to_dict(a) == scenario_to_dict(b)

    def test_cases_are_independent_of_each_other(self):
        """Case 3 regenerates identically whether or not cases 0-2 were
        drawn first from the same registry (dedicated streams)."""
        registry = RngRegistry(7)
        for i in range(3):
            generate_scenario(registry, i)
        after_others = generate_scenario(registry, 3)
        fresh = generate_scenario(RngRegistry(7), 3)
        assert scenario_to_dict(after_others) == scenario_to_dict(fresh)

    def test_different_seeds_differ(self):
        a = generate_scenario(RngRegistry(0), 0)
        b = generate_scenario(RngRegistry(1), 0)
        assert scenario_to_dict(a) != scenario_to_dict(b)

    def test_generated_scenarios_are_wellformed(self):
        for index in range(5):
            s = generate_scenario(RngRegistry(11), index)
            assert len(s.flows) >= 2
            for f in s.flows:
                assert len(f.path) >= 2
                assert all(n in s.network.nodes for n in f.path)

    def test_roundtrips_through_io(self):
        s = generate_scenario(RngRegistry(3), 1)
        back = scenario_from_dict(scenario_to_dict(s))
        assert scenario_to_dict(back) == scenario_to_dict(s)


class TestSuite:
    def test_healthy_scenario_all_pass(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        outcomes = VerificationSuite().run(scenario)
        assert len(outcomes) == 15
        assert all(o.status == PASS for o in outcomes), [
            (o.name, o.status, o.details) for o in outcomes
        ]

    def test_injected_fault_is_caught(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        suite = VerificationSuite(fault=inject_share_fault)
        failed = {o.name for o in suite.run(scenario) if o.failed}
        # The inflated share must at least overload a clique.
        assert "lp.clique_capacity" in failed

    def test_check_names_are_stable(self):
        scenario = generate_scenario(RngRegistry(0), 1)
        names = [o.name for o in VerificationSuite().run(scenario)]
        assert names == [
            "cliques.brute_force",
            "invariants.virtual_length",
            "invariants.omega_le_basic_denom",
            "basic.clique_capacity",
            "basic.basic_fairness",
            "basic.fairness_constraint",
            "basic.prop1_bound",
            "prop1.clique_capacity",
            "prop1.fairness_constraint",
            "prop1.prop1_bound",
            "lp.clique_capacity",
            "lp.basic_fairness",
            "lp.float_vs_exact",
            "lp.allocation_total_optimal",
            "2pad.vs_centralized",
        ]


class TestShrinking:
    def test_shrinks_to_single_flow_when_any_flow_fails(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        assert len(scenario.flows) >= 2
        minimal = shrink_scenario(scenario, lambda s: True)
        assert len(minimal.flows) == 1
        # Unused nodes are pruned too.
        used = {n for f in minimal.flows for n in f.path}
        assert set(minimal.network.nodes) == used

    def test_keeps_scenario_when_shrink_breaks_failure(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        n = len(scenario.flows)
        minimal = shrink_scenario(
            scenario, lambda s: len(s.flows) == n
        )
        assert len(minimal.flows) == n

    def test_crashing_candidates_are_rejected(self):
        scenario = generate_scenario(RngRegistry(0), 0)

        def predicate(s):
            if len(s.flows) < len(scenario.flows):
                raise RuntimeError("checker crashed on candidate")
            return True

        minimal = shrink_scenario(scenario, predicate)
        assert len(minimal.flows) == len(scenario.flows)


class TestRunFuzz:
    def test_clean_run(self):
        report = run_fuzz(cases=10, seed=0)
        assert report.ok
        assert not report.failures
        assert report.checks["cliques.brute_force"][PASS] >= 1
        for name, row in report.checks.items():
            assert row[FAIL] == 0, (name, row)

    def test_fault_injection_end_to_end(self, tmp_path):
        """Acceptance path: injected fault caught, shrunk to a minimal
        scenario, serialized with its originating seed, and reloadable."""
        report = run_fuzz(
            cases=5, seed=0, inject_fault=True,
            reproducer_dir=str(tmp_path),
        )
        assert report.ok  # with a fault injected, ok == caught something
        assert report.failures
        failure = report.failures[0]
        assert failure.check == "lp.clique_capacity"
        # Shrunk at least as small, and still well-formed.
        assert len(failure.shrunk["flows"]) <= len(
            failure.scenario["flows"]
        )
        doc = json.loads(open(failure.reproducer_path).read())
        assert doc["kind"] == "repro.verify/reproducer"
        assert doc["seed"] == 0
        assert doc["check"] == "lp.clique_capacity"
        reloaded = scenario_from_dict(doc["scenario"])
        assert reloaded.flows  # replayable
        # The shrunk reproducer still fails the same check.
        suite = VerificationSuite(fault=inject_share_fault)
        assert any(
            o.name == failure.check and o.failed
            for o in suite.run(reloaded)
        )

    def test_missing_fault_means_unhealthy(self):
        """A fault-injected run that catches nothing reports not-ok:
        guards against the checkers rotting into yes-men."""
        report = run_fuzz(cases=3, seed=0, inject_fault=True)
        assert report.failures  # sanity: the fault IS caught today
        report.failures.clear()
        assert not report.ok

    def test_report_dict_shape(self):
        report = run_fuzz(cases=3, seed=1)
        doc = report.to_dict()
        assert doc["cases"] == 3
        assert doc["seed"] == 1
        assert doc["ok"] is True
        assert set(doc["checks"]) == {
            o for o in doc["checks"]
        }
        for row in doc["checks"].values():
            assert set(row) == {"pass", "fail", "skip"}

    def test_render_mentions_every_check(self):
        report = run_fuzz(cases=2, seed=0)
        text = report.render()
        for name in report.checks:
            assert name in text
        assert "all checks passed" in text

    def test_max_failures_stops_early(self, tmp_path):
        report = run_fuzz(
            cases=50, seed=0, inject_fault=True, max_failures=2,
        )
        assert len(report.failures) == 2


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fuzz_is_reproducible(seed):
    a = run_fuzz(cases=4, seed=seed)
    b = run_fuzz(cases=4, seed=seed)
    assert a.to_dict() == b.to_dict()
