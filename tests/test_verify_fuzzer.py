"""Fuzz harness: generation determinism, the suite, shrinking, fault
injection (the generate → check → shrink → serialize loop end to end)."""

import json

import pytest

from repro.scenarios.io import scenario_from_dict, scenario_to_dict
from repro.sim.rng import RngRegistry
from repro.verify import (
    VerificationSuite,
    generate_scenario,
    inject_share_fault,
    run_fuzz,
    shrink_scenario,
)
from repro.verify.fuzzer import FAIL, PASS


class TestGeneration:
    def test_deterministic_per_seed_and_index(self):
        a = generate_scenario(RngRegistry(7), 3)
        b = generate_scenario(RngRegistry(7), 3)
        assert scenario_to_dict(a) == scenario_to_dict(b)

    def test_cases_are_independent_of_each_other(self):
        """Case 3 regenerates identically whether or not cases 0-2 were
        drawn first from the same registry (dedicated streams)."""
        registry = RngRegistry(7)
        for i in range(3):
            generate_scenario(registry, i)
        after_others = generate_scenario(registry, 3)
        fresh = generate_scenario(RngRegistry(7), 3)
        assert scenario_to_dict(after_others) == scenario_to_dict(fresh)

    def test_different_seeds_differ(self):
        a = generate_scenario(RngRegistry(0), 0)
        b = generate_scenario(RngRegistry(1), 0)
        assert scenario_to_dict(a) != scenario_to_dict(b)

    def test_generated_scenarios_are_wellformed(self):
        for index in range(5):
            s = generate_scenario(RngRegistry(11), index)
            assert len(s.flows) >= 2
            for f in s.flows:
                assert len(f.path) >= 2
                assert all(n in s.network.nodes for n in f.path)

    def test_roundtrips_through_io(self):
        s = generate_scenario(RngRegistry(3), 1)
        back = scenario_from_dict(scenario_to_dict(s))
        assert scenario_to_dict(back) == scenario_to_dict(s)


class TestSuite:
    def test_healthy_scenario_all_pass(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        outcomes = VerificationSuite().run(scenario)
        assert len(outcomes) == 15
        assert all(o.status == PASS for o in outcomes), [
            (o.name, o.status, o.details) for o in outcomes
        ]

    def test_injected_fault_is_caught(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        suite = VerificationSuite(fault=inject_share_fault)
        failed = {o.name for o in suite.run(scenario) if o.failed}
        # The inflated share must at least overload a clique.
        assert "lp.clique_capacity" in failed

    def test_check_names_are_stable(self):
        scenario = generate_scenario(RngRegistry(0), 1)
        names = [o.name for o in VerificationSuite().run(scenario)]
        assert names == [
            "cliques.brute_force",
            "invariants.virtual_length",
            "invariants.omega_le_basic_denom",
            "basic.clique_capacity",
            "basic.basic_fairness",
            "basic.fairness_constraint",
            "basic.prop1_bound",
            "prop1.clique_capacity",
            "prop1.fairness_constraint",
            "prop1.prop1_bound",
            "lp.clique_capacity",
            "lp.basic_fairness",
            "lp.float_vs_exact",
            "lp.allocation_total_optimal",
            "2pad.vs_centralized",
        ]


class TestShrinking:
    def test_shrinks_to_single_flow_when_any_flow_fails(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        assert len(scenario.flows) >= 2
        minimal = shrink_scenario(scenario, lambda s: True)
        assert len(minimal.flows) == 1
        # Unused nodes are pruned too.
        used = {n for f in minimal.flows for n in f.path}
        assert set(minimal.network.nodes) == used

    def test_keeps_scenario_when_shrink_breaks_failure(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        n = len(scenario.flows)
        minimal = shrink_scenario(
            scenario, lambda s: len(s.flows) == n
        )
        assert len(minimal.flows) == n

    def test_crashing_candidates_are_rejected(self):
        scenario = generate_scenario(RngRegistry(0), 0)

        def predicate(s):
            if len(s.flows) < len(scenario.flows):
                raise RuntimeError("checker crashed on candidate")
            return True

        minimal = shrink_scenario(scenario, predicate)
        assert len(minimal.flows) == len(scenario.flows)


class TestRunFuzz:
    def test_clean_run(self):
        report = run_fuzz(cases=10, seed=0)
        assert report.ok
        assert not report.failures
        assert report.checks["cliques.brute_force"][PASS] >= 1
        for name, row in report.checks.items():
            assert row[FAIL] == 0, (name, row)

    def test_fault_injection_end_to_end(self, tmp_path):
        """Acceptance path: injected fault caught, shrunk to a minimal
        scenario, serialized with its originating seed, and reloadable."""
        report = run_fuzz(
            cases=5, seed=0, inject_fault=True,
            reproducer_dir=str(tmp_path),
        )
        assert report.ok  # with a fault injected, ok == caught something
        assert report.failures
        failure = report.failures[0]
        assert failure.check == "lp.clique_capacity"
        # Shrunk at least as small, and still well-formed.
        assert len(failure.shrunk["flows"]) <= len(
            failure.scenario["flows"]
        )
        doc = json.loads(open(failure.reproducer_path).read())
        assert doc["kind"] == "repro.verify/reproducer"
        assert doc["seed"] == 0
        assert doc["check"] == "lp.clique_capacity"
        reloaded = scenario_from_dict(doc["scenario"])
        assert reloaded.flows  # replayable
        # The shrunk reproducer still fails the same check.
        suite = VerificationSuite(fault=inject_share_fault)
        assert any(
            o.name == failure.check and o.failed
            for o in suite.run(reloaded)
        )

    def test_missing_fault_means_unhealthy(self):
        """A fault-injected run that catches nothing reports not-ok:
        guards against the checkers rotting into yes-men."""
        report = run_fuzz(cases=3, seed=0, inject_fault=True)
        assert report.failures  # sanity: the fault IS caught today
        report.failures.clear()
        assert not report.ok

    def test_report_dict_shape(self):
        report = run_fuzz(cases=3, seed=1)
        doc = report.to_dict()
        assert doc["cases"] == 3
        assert doc["seed"] == 1
        assert doc["ok"] is True
        assert set(doc["checks"]) == {
            o for o in doc["checks"]
        }
        for row in doc["checks"].values():
            assert set(row) == {"pass", "fail", "skip"}

    def test_render_mentions_every_check(self):
        report = run_fuzz(cases=2, seed=0)
        text = report.render()
        for name in report.checks:
            assert name in text
        assert "all checks passed" in text

    def test_max_failures_stops_early(self, tmp_path):
        report = run_fuzz(
            cases=50, seed=0, inject_fault=True, max_failures=2,
        )
        assert len(report.failures) == 2


class TestChurnMode:
    def test_churn_mode_adds_runtime_checks(self):
        report = run_fuzz(cases=3, seed=0, churn=True)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.checks["churn.no_raise"][PASS] == 3
        assert report.checks["churn.epoch_checks"][PASS] == 3
        assert report.checks["churn.crash_restore_identical"][PASS] == 3

    def test_churn_failure_shrinks_timeline_into_reproducer(self):
        """A churn-only failure is shrunk along BOTH axes — scenario
        and timeline — and the reproducer carries the timeline."""
        from repro.resilience.epochs import ChurnTimeline
        from repro.verify.fuzzer import VerificationSuite, _run_case

        class _ChurnFaultOnly(VerificationSuite):
            """Perturb allocations only on the churn path, so the first
            failing check is ``churn.*`` (the static suite stays clean)."""

            def run(self, scenario):
                fault, self.fault = self.fault, None
                try:
                    return super().run(scenario)
                finally:
                    self.fault = fault

        suite = _ChurnFaultOnly(fault=inject_share_fault, churn=True)
        outcomes, failure = _run_case(0, 0, suite)
        assert failure is not None
        assert failure.check.startswith("churn.")
        assert failure.churn_timeline is not None
        # The serialized timeline replays and is no bigger than a fresh
        # draw for this case would be.
        timeline = ChurnTimeline.from_dict(failure.churn_timeline)
        assert timeline.to_dict() == failure.churn_timeline
        original = scenario_from_dict(failure.scenario)
        fresh = ChurnTimeline.draw(
            RngRegistry(0).stream(("verify", 0, "churn")),
            original.flow_ids,
            original.network.nodes,
            original.network.links(),
        )
        assert len(timeline.events) <= len(fresh.events)
        assert timeline.epochs <= fresh.epochs
        # to_dict round-trips through the failure record.
        doc = failure.to_dict()
        assert doc["churn_timeline"] == failure.churn_timeline

    def test_churn_failures_replay_from_reproducer_fields(self):
        """The (shrunk scenario, shrunk timeline) pair still fails the
        recorded check — the reproducer is self-contained."""
        from repro.resilience.campaign import run_churn_case
        from repro.resilience.epochs import ChurnTimeline
        from repro.verify.fuzzer import VerificationSuite, _run_case

        class _ChurnFaultOnly(VerificationSuite):
            def run(self, scenario):
                fault, self.fault = self.fault, None
                try:
                    return super().run(scenario)
                finally:
                    self.fault = fault

        suite = _ChurnFaultOnly(fault=inject_share_fault, churn=True)
        _outcomes, failure = _run_case(1, 0, suite)
        assert failure is not None
        case = run_churn_case(
            scenario_from_dict(failure.shrunk),
            ChurnTimeline.from_dict(failure.churn_timeline),
            seed=0,
            hysteresis=0.3,
            stream_prefix=("verify", 1, "churn"),
            fault=inject_share_fault,
        )
        assert any(name == failure.check and not ok
                   for name, ok, _details in case.checks)


class TestBackendAxis:
    def test_revised_backend_clean_run(self):
        """Zero oracle disagreements with the revised backend driving
        every LP check across seeded fuzz cases."""
        report = run_fuzz(cases=8, seed=0, backend="revised")
        assert report.ok
        assert not report.failures
        assert report.backend == "revised"
        assert report.to_dict()["backend"] == "revised"
        assert "[backend revised]" in report.render()

    def test_default_backend_unchanged(self):
        report = run_fuzz(cases=2, seed=0)
        assert report.backend == "simplex"
        assert "[backend" not in report.render()

    def test_backend_runs_agree_check_by_check(self):
        dense = run_fuzz(cases=5, seed=3)
        revised = run_fuzz(cases=5, seed=3, backend="revised")
        assert dense.checks == revised.checks

    def test_reproducer_records_backend(self, tmp_path):
        report = run_fuzz(
            cases=3, seed=0, inject_fault=True, backend="revised",
            reproducer_dir=str(tmp_path),
        )
        assert report.failures
        doc = json.loads(
            open(report.failures[0].reproducer_path).read()
        )
        assert doc["backend"] == "revised"

    def test_run_lp_checks_is_the_lp_subset_of_run(self):
        scenario = generate_scenario(RngRegistry(0), 0)
        suite = VerificationSuite(backend="revised")
        lp_only = suite.run_lp_checks(scenario)
        assert [o.name for o in lp_only] == [
            "lp.clique_capacity",
            "lp.basic_fairness",
            "lp.float_vs_exact",
            "lp.allocation_total_optimal",
        ]
        full = {o.name: o.status for o in suite.run(scenario)}
        for o in lp_only:
            assert o.status == full[o.name]

    def test_lp_failures_shrink_without_clique_reruns(self, monkeypatch):
        """Shrinking an lp.* failure must not re-run the exponential
        brute-force clique oracle on every candidate: exactly one call
        (the original failing case), zero during shrinking."""
        import repro.verify.fuzzer as fuzzer_mod

        calls = {"n": 0}
        real = fuzzer_mod.cliques_agree

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(fuzzer_mod, "cliques_agree", counting)
        report = run_fuzz(cases=1, seed=0, inject_fault=True)
        assert report.failures
        assert report.failures[0].check.startswith("lp.")
        assert calls["n"] == 1


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fuzz_is_reproducible(seed):
    a = run_fuzz(cases=4, seed=seed)
    b = run_fuzz(cases=4, seed=seed)
    assert a.to_dict() == b.to_dict()
