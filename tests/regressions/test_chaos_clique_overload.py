"""Regression: fuzzer-discovered 2PA-D clique overload (seed 0, case 8).

First found by the chaos campaign (``repro verify --faults`` / the
``chaos`` subcommand) during development: on case 8 of seed 0 the
*fault-free* 2PA-D allocation violates Eq. (6).  Each source's local LP
bounds the flows it knows about, but independently solved sources adopt
mutually inconsistent assumptions about each other, and the summed
shares overfill a shared clique by ~6%.  The resilient path
(``channel=`` seam) now always finishes with the capacity governor
(:func:`repro.resilience.degrade.enforce_clique_capacity`), which
rescales exactly the overloaded cliques' members, so under *any* fault
plan — including the lossless one stored here — the allocation satisfies
Eq. (6).

The scenario is the case-8 instance shrunk by the fuzzer to two flows
and five nodes; the fault plan shrank all the way to lossless, which is
the point: no faults are needed to trigger the bug.
"""

import json
from pathlib import Path

from repro.core import ContentionAnalysis, DistributedAllocator
from repro.resilience import (
    CONVERGED,
    FaultInjector,
    FaultPlan,
    UnreliableChannel,
    run_chaos_case,
)
from repro.scenarios.io import scenario_from_dict
from repro.sim.rng import RngRegistry
from repro.verify.invariants import check_clique_capacity

REPRODUCER = (
    Path(__file__).parent / "data"
    / "verify-reproducer-s0-c8-faults.clique_capacity.json"
)


def load():
    doc = json.loads(REPRODUCER.read_text())
    assert doc["kind"] == "repro.verify/reproducer"
    assert (doc["seed"], doc["case"]) == (0, 8)
    return (
        scenario_from_dict(doc["scenario"]),
        FaultPlan.from_dict(doc["fault_plan"]),
    )


def test_scenario_still_exhibits_the_raw_overload():
    """If this stops failing, the data file no longer pins the bug shape —
    regenerate from seed 0 case 8 before weakening it."""
    scenario, _plan = load()
    analysis = ContentionAnalysis(scenario)
    shares = DistributedAllocator(scenario, analysis=analysis).run().shares
    assert not check_clique_capacity(analysis, shares).ok


def test_resilient_path_restores_eq6():
    scenario, plan = load()
    assert plan.lossless
    analysis = ContentionAnalysis(scenario)
    channel = UnreliableChannel(
        FaultInjector(plan, RngRegistry(0), prefix=("regression", "c8"))
    )
    result = DistributedAllocator(
        scenario, analysis=analysis, channel=channel
    ).run()
    assert check_clique_capacity(analysis, result.shares).ok


def test_chaos_case_passes_end_to_end():
    scenario, plan = load()
    case = run_chaos_case(scenario, plan, RngRegistry(0))
    assert case.ok, case.failed_checks()
    assert case.status == CONVERGED
