"""Regression: fuzzer-discovered one-ulp LP infeasibility (seed 0, case 27).

First found by ``repro verify --seed 0`` during development: on 5 of the
first 50 cases, the float simplex reported ``optimal`` for a group LP
whose exact-Fraction re-solve reported ``infeasible``.  The LPs were
correct — their float *data* was not: the basic-share lower bounds (each
``B / Σ w_j v_j`` rounded to float) exactly overfill a tight clique by
one ulp, so the rational LP they literally encode is empty even though
the real-number LP is feasible.  The oracle now re-solves such cases
exactly with all bounds slackened by 1e-9 and treats objective agreement
as a (flagged) pass.

The scenario here is the case-27 instance shrunk by the fuzzer to two
flows and four nodes.  Originating run recorded in the JSON: seed 0,
case 27, check ``lp.float_vs_exact``.
"""

import json
from pathlib import Path

from repro.core import ContentionAnalysis
from repro.core.allocation import build_basic_fairness_lp
from repro.lp import solve
from repro.scenarios.io import scenario_from_dict
from repro.verify import VerificationSuite, lp_objective_matches, solve_exact

REPRODUCER = (
    Path(__file__).parent / "data"
    / "verify-reproducer-s0-c27-lp.float_vs_exact.json"
)


def load():
    doc = json.loads(REPRODUCER.read_text())
    assert doc["kind"] == "repro.verify/reproducer"
    assert (doc["seed"], doc["case"]) == (0, 27)
    return scenario_from_dict(doc["scenario"])


def group_lps(scenario):
    analysis = ContentionAnalysis(scenario)
    return [
        build_basic_fairness_lp(analysis, group, scenario.capacity)
        for group in analysis.groups
    ]


def test_scenario_still_exhibits_the_ulp_artifact():
    """If this stops failing raw-exact, the data file no longer pins the
    bug shape — regenerate from seed 0 case 27 before weakening it."""
    statuses = [
        (solve(lp, "simplex").status, solve_exact(lp).status)
        for lp in group_lps(load())
    ]
    assert ("optimal", "infeasible") in statuses, statuses


def test_oracle_classifies_it_as_borderline_agreement():
    hit = False
    for lp in group_lps(load()):
        report = lp_objective_matches(lp)
        assert report["ok"], report
        if report.get("borderline"):
            hit = True
            assert report["simplex_status"] == "optimal"
            assert report["exact_status"] == "infeasible"
            assert "exact_objective" in report
    assert hit


def test_full_suite_passes_on_reproducer():
    outcomes = VerificationSuite().run(load())
    assert all(o.status != "fail" for o in outcomes), [
        (o.name, o.status, o.details) for o in outcomes if o.failed
    ]
