"""Tests for the fluid (ideal) reference scheduler."""

import pytest

from repro.core import ContentionAnalysis, basic_fairness_lp_allocation
from repro.mac import MacTimings
from repro.sched import (
    build_2pa,
    fluid_prediction,
    fluid_vs_measured,
    mac_efficiency,
    predict_for_scenario,
)
from repro.scenarios import fig1, fig5


class TestMacEfficiency:
    def test_in_unit_interval(self):
        eff = mac_efficiency()
        assert 0.4 < eff < 0.7

    def test_larger_packets_more_efficient(self):
        assert mac_efficiency(packet_bytes=1500) > mac_efficiency(
            packet_bytes=256
        )

    def test_zero_backoff_raises_efficiency(self):
        assert mac_efficiency(mean_backoff_slots=0.0) > mac_efficiency()


class TestFluidPrediction:
    @pytest.fixture(scope="class")
    def fig1_pack(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        allocation = basic_fairness_lp_allocation(analysis)
        return analysis, allocation

    def test_pure_fluid_counts(self, fig1_pack):
        analysis, allocation = fig1_pack
        pred = fluid_prediction(analysis, allocation, seconds=1.0)
        # Flow 1 at 0.5 x 2 Mbps = 1 Mbps / 4096 bits = 244.14 pkts/s.
        assert pred.flow_packets["1"] == pytest.approx(244.14, rel=1e-3)
        assert pred.flow_packets["2"] == pytest.approx(122.07, rel=1e-3)
        assert pred.schedulable

    def test_efficiency_scales_linearly(self, fig1_pack):
        analysis, allocation = fig1_pack
        full = fluid_prediction(analysis, allocation, 1.0)
        half = fluid_prediction(analysis, allocation, 1.0,
                                efficiency=0.5)
        assert half.total_packets == pytest.approx(
            0.5 * full.total_packets
        )

    def test_infeasible_allocation_is_rescaled(self):
        analysis = fig5.make_analysis()
        allocation = basic_fairness_lp_allocation(analysis)
        pred = fluid_prediction(analysis, allocation, 1.0)
        assert not pred.schedulable
        assert pred.schedule_length == pytest.approx(1.25, abs=1e-6)
        # B/2 rescaled by 4/5 -> 2B/5 -> 0.4 * 488.3 pkts/s.
        assert pred.flow_packets["1"] == pytest.approx(
            0.4 * 2e6 / 4096, rel=1e-3
        )

    def test_invalid_args(self, fig1_pack):
        analysis, allocation = fig1_pack
        with pytest.raises(ValueError):
            fluid_prediction(analysis, allocation, 0.0)
        with pytest.raises(ValueError):
            fluid_prediction(analysis, allocation, 1.0, efficiency=0.0)


class TestAgainstSimulation:
    def test_simulated_2pa_lands_near_the_mac_adjusted_ideal(self):
        """The MAC achieves 60-110% of the efficiency-adjusted fluid
        bound on Fig. 1 (contention costs what the efficiency factor
        cannot capture)."""
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        allocation = basic_fairness_lp_allocation(analysis)
        pred = predict_for_scenario(scenario, allocation, seconds=5.0)
        build = build_2pa(scenario, "centralized", seed=1,
                          analysis=analysis)
        metrics = build.run.run(seconds=5.0)
        measured = {
            fid: metrics.flows[fid].delivered_end_to_end
            for fid in scenario.flow_ids
        }
        ratios = fluid_vs_measured(pred, measured)
        for fid, ratio in ratios.items():
            assert 0.5 < ratio < 1.15, (fid, ratio)
