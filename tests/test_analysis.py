"""Tests for the post-hoc metrics analysis module."""

import pytest

from repro.core.model import SubflowId
from repro.metrics import (
    MetricsCollector,
    intra_flow_balance,
    loss_breakdown,
    measured_fairness_index,
    share_adherence,
    utilization,
)
from repro.net.packet import DataPacket
from repro.scenarios import fig1


@pytest.fixture
def metrics():
    m = MetricsCollector(fig1.make_scenario())
    m.duration = 1_000_000.0
    return m


def pkt(m, flow, hop):
    path = tuple(m.scenario.flow(flow).path)
    return DataPacket(flow, path, 512, 0.0, hop=hop)


def deliver(m, flow, hop, n):
    for _ in range(n):
        m.record_hop_delivery(pkt(m, flow, hop))


class TestShareAdherence:
    def test_perfect_tracking(self, metrics):
        deliver(metrics, "1", 2, 100)
        deliver(metrics, "2", 2, 50)
        report = share_adherence(metrics, {"1": 0.5, "2": 0.25})
        assert report.adherence_index == pytest.approx(1.0)
        assert report.max_relative_error == pytest.approx(0.0)
        assert report.is_tight

    def test_skewed_tracking(self, metrics):
        deliver(metrics, "1", 2, 100)
        deliver(metrics, "2", 2, 100)  # should be 50 under 2:1 targets
        report = share_adherence(metrics, {"1": 0.5, "2": 0.25})
        assert report.adherence_index < 0.95
        assert not report.is_tight

    def test_zero_target_rejected(self, metrics):
        with pytest.raises(ValueError):
            share_adherence(metrics, {"1": 0.0})


class TestFairnessIndex:
    def test_weighted_normalization(self, metrics):
        deliver(metrics, "1", 2, 100)
        deliver(metrics, "2", 2, 50)
        # Unweighted: unequal; with weights (2, 1): perfectly fair.
        assert measured_fairness_index(metrics) < 1.0
        assert measured_fairness_index(
            metrics, {"1": 2.0, "2": 1.0}
        ) == pytest.approx(1.0)


class TestIntraFlowBalance:
    def test_balanced(self, metrics):
        deliver(metrics, "1", 1, 50)
        deliver(metrics, "1", 2, 50)
        assert intra_flow_balance(metrics)["1"] == pytest.approx(1.0)

    def test_starved_downstream(self, metrics):
        deliver(metrics, "1", 1, 100)
        deliver(metrics, "1", 2, 10)
        assert intra_flow_balance(metrics)["1"] == pytest.approx(0.1)

    def test_no_traffic(self, metrics):
        assert intra_flow_balance(metrics)["1"] == 1.0


class TestLossBreakdown:
    def test_split_by_mechanism(self, metrics):
        metrics.record_relay_drop(pkt(metrics, "1", 2))
        metrics.record_relay_drop(pkt(metrics, "1", 2))
        metrics.record_mac_drop(pkt(metrics, "2", 2))
        metrics.record_source_drop("1")
        bd = loss_breakdown(metrics)
        assert bd.relay_queue_drops["1"] == 2
        assert bd.downstream_mac_drops["2"] == 1
        assert bd.source_drops["1"] == 1
        assert bd.total_in_network == 3
        assert bd.dominated_by_buffers()

    def test_mac_dominated(self, metrics):
        metrics.record_mac_drop(pkt(metrics, "1", 2))
        metrics.record_mac_drop(pkt(metrics, "1", 2))
        metrics.record_relay_drop(pkt(metrics, "1", 2))
        assert not loss_breakdown(metrics).dominated_by_buffers()


class TestUtilization:
    def test_value(self, metrics):
        deliver(metrics, "1", 2, 100)
        # 100 pkts x 4096 bits over 2 Mbps x 1 s.
        assert utilization(metrics) == pytest.approx(0.2048)

    def test_requires_duration(self):
        m = MetricsCollector(fig1.make_scenario())
        with pytest.raises(RuntimeError):
            utilization(m)
