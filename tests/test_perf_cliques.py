"""Differential tests: the bitset Bron–Kerbosch kernel vs the set-based
reference, including on fuzzer-generated contention graphs, plus the
adjacency-matrix/bitmask builders it rests on."""

import itertools
import random

import numpy as np
import pytest

from repro.core.contention import ContentionAnalysis
from repro.graphs import Graph
from repro.graphs.cliques import (
    _BITSET_MIN_VERTICES,
    clique_vertex_order,
    maximal_cliques,
    maximal_cliques_set,
)
from repro.obs.registry import using_registry
from repro.perf.cliques import (
    _masks_from_matrix,
    adjacency_bitmasks,
    adjacency_matrix,
    bitset_cliques_from_masks,
    maximal_cliques_bitset,
)
from repro.sim.rng import RngRegistry
from repro.verify.fuzzer import generate_scenario


def random_graph(n, p, rng):
    g = Graph()
    verts = list(range(n))
    rng.shuffle(verts)
    for v in verts:
        g.add_vertex(v)
    for u, v in itertools.combinations(range(n), 2):
        if rng.random() < p:
            g.add_edge(u, v)
    return g


class TestAdjacencyBuilders:
    def test_matrix_matches_edges(self):
        rng = random.Random(0)
        g = random_graph(12, 0.4, rng)
        matrix, order = adjacency_matrix(g)
        assert order == clique_vertex_order(g)
        idx = {v: i for i, v in enumerate(order)}
        for u in g:
            for v in g:
                expected = g.has_edge(u, v)
                assert bool(matrix[idx[u], idx[v]]) == expected
        assert not matrix.diagonal().any()
        assert (matrix == matrix.T).all()

    def test_bitmasks_match_matrix(self):
        rng = random.Random(1)
        for n in (0, 1, 5, 20, 60):
            g = random_graph(n, 0.5, rng)
            masks, order = adjacency_bitmasks(g)
            matrix, order2 = adjacency_matrix(g)
            assert order == order2
            # The numpy packbits route must agree with the direct build.
            assert _masks_from_matrix(matrix) == masks
            for i in range(n):
                expected = sum(
                    1 << j for j in range(n) if matrix[i, j]
                )
                assert masks[i] == expected

    def test_explicit_order_is_respected(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        order = ["c", "a", "b"]
        masks, out_order = adjacency_bitmasks(g, order=order)
        assert out_order == order
        # c (bit 0) adjacent to b (bit 2); a (bit 1) adjacent to b.
        assert masks == [0b100, 0b100, 0b011]


class TestBitsetVsSetDifferential:
    @pytest.mark.parametrize("p", [0.1, 0.3, 0.5, 0.8])
    def test_random_graphs_agree(self, p):
        rng = random.Random(int(p * 100))
        for _ in range(40):
            g = random_graph(rng.randrange(0, 24), p, rng)
            assert maximal_cliques_bitset(g) == maximal_cliques_set(g)

    def test_dispatcher_agrees_both_sides_of_threshold(self):
        rng = random.Random(9)
        for n in (_BITSET_MIN_VERTICES - 1, _BITSET_MIN_VERTICES,
                  _BITSET_MIN_VERTICES + 5):
            g = random_graph(n, 0.5, rng)
            assert maximal_cliques(g) == maximal_cliques_set(g)

    def test_string_and_tuple_vertices(self):
        g = Graph()
        for v in ["f10:1", "f2:1", ("x", 1), ("x", 2), "alpha"]:
            g.add_vertex(v)
        for u, v in [("f10:1", "f2:1"), ("f2:1", ("x", 1)),
                     (("x", 1), ("x", 2)), (("x", 2), "alpha"),
                     ("f10:1", "alpha")]:
            g.add_edge(u, v)
        assert maximal_cliques_bitset(g) == maximal_cliques_set(g)

    def test_fuzzer_contention_graphs_agree(self):
        registry = RngRegistry(17)
        for index in range(8):
            scenario = generate_scenario(registry, index)
            graph = ContentionAnalysis(scenario).graph
            assert maximal_cliques_bitset(graph) == \
                maximal_cliques_set(graph)

    def test_empty_and_complete(self):
        empty = Graph()
        assert maximal_cliques_bitset(empty) == []
        complete = Graph()
        for u, v in itertools.combinations(range(10), 2):
            complete.add_edge(u, v)
        assert maximal_cliques_bitset(complete) == [
            frozenset(range(10))
        ]

    def test_isolated_vertices(self):
        g = Graph()
        for v in range(9):
            g.add_vertex(v)
        g.add_edge(0, 1)
        result = maximal_cliques_bitset(g)
        assert frozenset({0, 1}) in result
        assert all(len(c) == 1 for c in result[1:])
        assert result == maximal_cliques_set(g)


class TestBitsetKernelInternals:
    def test_masks_only_entry_point(self):
        # Triangle 0-1-2 plus pendant 3 on 2.
        masks = [0b0110, 0b0101, 0b1011, 0b0100]
        cliques = bitset_cliques_from_masks(masks)
        assert sorted(cliques) == sorted([0b0111, 0b1100])

    def test_counters_reported(self):
        g = Graph()
        for u, v in itertools.combinations(range(12), 2):
            g.add_edge(u, v)
        with using_registry() as reg:
            maximal_cliques_bitset(g)
        assert reg.counters["perf.cliques.bitset_calls"].value == 1
        assert reg.counters["perf.cliques.bitset_vertices"].value == 12
        assert reg.counters["perf.cliques.bitset_cliques"].value == 1
        assert "perf.cliques.bitset" in reg.timers
