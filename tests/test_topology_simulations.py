"""Simulation smoke tests across the topology library.

Each classic topology runs a short 2PA simulation and the measured
behaviour is checked against the analytic allocation — the scheduler
must generalize beyond the two paper scenarios.
"""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    run_distributed,
)
from repro.metrics.analysis import intra_flow_balance, share_adherence
from repro.sched import build_2pa, build_80211
from repro.scenarios import cross, grid_scenario, parallel_chains, star


class TestStarSimulation:
    def test_weighted_star_tracks_weights(self):
        scenario = star(3, weights=[1.0, 2.0, 3.0])
        build = build_2pa(scenario, "centralized", seed=1)
        metrics = build.run.run(seconds=5.0)
        report = share_adherence(metrics, build.allocation.shares)
        assert report.adherence_index > 0.98
        assert metrics.total_lost_packets() == 0  # single-hop flows


class TestCrossSimulation:
    def test_symmetric_flows_get_symmetric_service(self):
        scenario = cross(2)
        build = build_2pa(scenario, "centralized", seed=1)
        metrics = build.run.run(seconds=8.0)
        u1 = metrics.flows["1"].delivered_end_to_end
        u2 = metrics.flows["2"].delivered_end_to_end
        assert u1 > 100 and u2 > 100
        assert u1 / u2 == pytest.approx(1.0, rel=0.25)

    def test_relay_stays_balanced(self):
        scenario = cross(2)
        build = build_2pa(scenario, "centralized", seed=1)
        metrics = build.run.run(seconds=8.0)
        balance = intra_flow_balance(metrics)
        for fid, value in balance.items():
            assert value > 0.8, (fid, value)

    def test_distributed_phase1_works_on_cross(self):
        scenario = cross(2)
        result = run_distributed(scenario)
        # Symmetry: both flows adopt the same share.
        assert result.share("1") == pytest.approx(result.share("2"),
                                                  abs=1e-6)


class TestParallelChainsSimulation:
    def test_coupled_chains_share_fairly(self):
        scenario = parallel_chains(2, 2)
        build = build_2pa(scenario, "centralized", seed=1)
        metrics = build.run.run(seconds=8.0)
        u1 = metrics.flows["1"].delivered_end_to_end
        u2 = metrics.flows["2"].delivered_end_to_end
        assert u1 / max(u2, 1) == pytest.approx(1.0, rel=0.3)
        assert metrics.loss_ratio() < 0.05

    def test_decoupled_chains_run_at_full_rate(self):
        scenario = parallel_chains(2, 2, chain_gap=600.0)
        build = build_2pa(scenario, "centralized", seed=1)
        metrics = build.run.run(seconds=5.0)
        # Each chain alone: B/2 allocation ~ >100 pkt/s end-to-end.
        for fid in ("1", "2"):
            assert metrics.flows[fid].delivered_end_to_end > 400


class TestGridSimulation:
    def test_grid_flows_deliver_with_low_loss_under_2pa(self):
        scenario = grid_scenario(4)
        tpa = build_2pa(scenario, "centralized", seed=1)
        m_tpa = tpa.run.run(seconds=6.0)
        assert m_tpa.loss_ratio() < 0.1
        for fid in scenario.flow_ids:
            assert m_tpa.flows[fid].delivered_end_to_end > 100

    def test_2pa_fairer_than_dcf_on_grid(self):
        from repro.metrics.analysis import measured_fairness_index

        scenario = grid_scenario(4)
        m_tpa = build_2pa(scenario, "centralized",
                          seed=2).run.run(seconds=6.0)
        m_dcf = build_80211(scenario, seed=2).run.run(seconds=6.0)
        assert (measured_fairness_index(m_tpa)
                >= measured_fairness_index(m_dcf) - 0.02)


class TestAllocationSanityAcrossLibrary:
    @pytest.mark.parametrize("make", [
        lambda: star(4),
        lambda: cross(2),
        lambda: cross(3),
        lambda: grid_scenario(3),
        lambda: parallel_chains(3, 2),
    ])
    def test_lp_respects_cliques_everywhere(self, make):
        scenario = make()
        analysis = ContentionAnalysis(scenario)
        alloc = basic_fairness_lp_allocation(analysis)
        for coeffs in analysis.all_coefficients():
            load = sum(alloc.share(f) * n for f, n in coeffs.items())
            assert load <= scenario.capacity + 1e-6
