"""Tests for dynamic flow arrivals/departures with re-allocation."""

import pytest

from repro.core.model import SubflowId
from repro.experiments import DynamicAllocationExperiment, FlowSchedule
from repro.mac import FairBackoffPolicy, MacTimings
from repro.scenarios import fig1


class TestFlowSchedule:
    def test_activation_window(self):
        sched = FlowSchedule("1", start=2.0, end=5.0)
        assert not sched.active_at(1.0)
        assert sched.active_at(2.0)
        assert sched.active_at(4.9)
        assert not sched.active_at(5.0)

    def test_open_ended(self):
        sched = FlowSchedule("1", start=0.0)
        assert sched.active_at(1e9)


class TestUpdateShares:
    def make_policy(self):
        return FairBackoffPolicy(
            "a", MacTimings(),
            {SubflowId("1", 1): 0.5},
        )

    def test_update_changes_rates(self):
        pol = self.make_policy()
        pol.update_shares({SubflowId("1", 1): 0.25})
        assert pol.shares[SubflowId("1", 1)] == 0.25
        assert pol.node_share == pytest.approx(0.25)

    def test_new_subflow_gets_a_queue(self):
        pol = self.make_policy()
        pol.update_shares({
            SubflowId("1", 1): 0.25,
            SubflowId("9", 1): 0.25,
        })
        assert SubflowId("9", 1) in pol.queues

    def test_removed_subflow_parked_not_deleted(self):
        pol = self.make_policy()
        pol.update_shares({SubflowId("9", 1): 0.4})
        # Old queue still present with a tiny parked share.
        assert SubflowId("1", 1) in pol.queues
        assert 0 < pol.shares[SubflowId("1", 1)] < 0.4

    def test_rejects_nonpositive(self):
        pol = self.make_policy()
        with pytest.raises(ValueError):
            pol.update_shares({SubflowId("1", 1): 0.0})


class TestDynamicExperiment:
    @pytest.fixture(scope="class")
    def snapshots(self):
        scenario = fig1.make_scenario()
        exp = DynamicAllocationExperiment(scenario, [
            FlowSchedule("1", start=0.0),
            FlowSchedule("2", start=4.0, end=8.0),
        ], seed=1)
        return exp.run(seconds=12.0)

    def test_three_phases(self, snapshots):
        assert [(s.start, s.end) for s in snapshots] == [
            (0.0, 4.0), (4.0, 8.0), (8.0, 12.0)
        ]
        assert snapshots[0].active_flows == ["1"]
        assert snapshots[1].active_flows == ["1", "2"]
        assert snapshots[2].active_flows == ["1"]

    def test_reallocation_happens(self, snapshots):
        # Alone, flow 1 gets B/2 (its own two hops are the binding
        # clique); once flow 2 joins the allocation stays (0.5, 0.25).
        assert snapshots[0].allocated == pytest.approx({"1": 0.5})
        assert snapshots[1].allocated == pytest.approx(
            {"1": 0.5, "2": 0.25}
        )

    def test_flow1_throttles_and_recovers(self, snapshots):
        alone, shared, after = (s.rate("1") for s in snapshots)
        assert shared < 0.8 * alone   # contention costs throughput
        assert after > 1.15 * shared  # and recovers after the departure
        assert after > 0.8 * alone

    def test_flow2_only_during_its_window(self, snapshots):
        assert snapshots[0].rate("2") == 0.0
        assert snapshots[1].rate("2") > 20.0
        # A small queue-drain tail after the source stops is fine.
        assert snapshots[2].rate("2") < 0.35 * snapshots[1].rate("2")

    def test_missing_schedule_rejected(self):
        scenario = fig1.make_scenario()
        with pytest.raises(ValueError):
            DynamicAllocationExperiment(
                scenario, [FlowSchedule("1")])
