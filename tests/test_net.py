"""Tests for packets, frames, queues, and MAC timing math."""

import pytest

from repro.core.model import SubflowId
from repro.net import DataPacket, DropTailQueue, Frame, FrameKind, TagInfo
from repro.mac import MacTimings
from repro.mac.timings import ACK_BYTES, CTS_BYTES, MAC_HEADER_BYTES, RTS_BYTES


def packet(hop=1, route=("a", "b", "c")):
    return DataPacket(flow_id="1", route=tuple(route), size_bytes=512,
                      created_at=0.0, seq=1, hop=hop)


class TestDataPacket:
    def test_hop_endpoints(self):
        p = packet()
        assert p.sender == "a"
        assert p.receiver == "b"
        assert p.destination == "c"
        assert p.subflow == SubflowId("1", 1)
        assert not p.at_last_hop

    def test_advance(self):
        p = packet()
        p.advance()
        assert p.hop == 2
        assert p.sender == "b"
        assert p.at_last_hop
        with pytest.raises(RuntimeError):
            p.advance()

    def test_next_hop_copy_fresh_uid(self):
        p = packet()
        q = p.next_hop_copy()
        assert q.uid != p.uid
        assert q.hop == p.hop + 1
        assert p.hop == 1  # original untouched
        assert q.route == p.route

    def test_next_hop_copy_at_destination_rejected(self):
        p = packet(hop=2)
        with pytest.raises(RuntimeError):
            p.next_hop_copy()

    def test_size_bits(self):
        assert packet().size_bits == 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            DataPacket("1", ("a",), 512, 0.0)
        with pytest.raises(ValueError):
            DataPacket("1", ("a", "b"), 0, 0.0)

    def test_uids_are_unique(self):
        assert packet().uid != packet().uid


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(3)
        p1, p2 = packet(), packet()
        q.offer(p1)
        q.offer(p2)
        assert q.head() is p1
        assert q.pop() is p1
        assert q.pop() is p2

    def test_overflow_drops(self):
        q = DropTailQueue(2)
        assert q.offer(packet())
        assert q.offer(packet())
        assert not q.offer(packet())
        assert q.stats.dropped == 1
        assert q.stats.enqueued == 2
        assert q.is_full

    def test_remove_specific(self):
        q = DropTailQueue(5)
        p1, p2 = packet(), packet()
        q.offer(p1)
        q.offer(p2)
        q.remove(p2)
        assert len(q) == 1
        assert q.head() is p1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            DropTailQueue(1).pop()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_bool_and_len(self):
        q = DropTailQueue(2)
        assert not q
        q.offer(packet())
        assert q and len(q) == 1

    def test_empty_head_is_none(self):
        assert DropTailQueue(1).head() is None


class TestMacTimings:
    def test_difs_definition(self):
        t = MacTimings()
        assert t.difs == t.sifs + 2 * t.slot == 50.0

    def test_control_durations(self):
        t = MacTimings()
        assert t.rts_duration == pytest.approx(192 + RTS_BYTES * 8 / 1.0)
        assert t.cts_duration == pytest.approx(192 + CTS_BYTES * 8 / 1.0)
        assert t.ack_duration == pytest.approx(192 + ACK_BYTES * 8 / 1.0)

    def test_data_duration_512b_at_2mbps(self):
        t = MacTimings()
        expected = 192 + (512 + MAC_HEADER_BYTES) * 8 / 2.0
        assert t.data_duration(512) == pytest.approx(expected)

    def test_transaction_composition(self):
        t = MacTimings()
        total = t.transaction_duration(512)
        manual = (t.rts_duration + t.sifs + t.cts_duration + t.sifs
                  + t.data_duration(512) + t.sifs + t.ack_duration)
        assert total == pytest.approx(manual)

    def test_nav_remainders_nest(self):
        t = MacTimings()
        after_rts = t.exchange_remainder_after_rts(512)
        after_cts = t.exchange_remainder_after_cts(512)
        assert after_rts == pytest.approx(
            t.sifs + t.cts_duration + after_cts
        )

    def test_with_cw_min(self):
        t = MacTimings().with_cw_min(63)
        assert t.cw_min == 63
        assert t.slot == 20.0

    def test_saturation_rate_is_sane(self):
        """~290 packets/s max for 512-byte payloads on one channel."""
        t = MacTimings()
        per_packet = t.difs + t.transaction_duration(512)
        rate = 1e6 / per_packet
        assert 250 < rate < 330


class TestFrames:
    def test_frame_str(self):
        f = Frame(FrameKind.RTS, "a", "b", duration=352.0)
        assert str(f) == "RTS a->b"

    def test_tag_info_fields(self):
        tags = TagInfo("a", SubflowId("1", 1), 5.0, receiver_backoff=2.0)
        assert tags.node == "a"
        assert tags.receiver_backoff == 2.0
