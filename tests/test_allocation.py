"""Tests for every allocation strategy against the paper's numbers."""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_allocation,
    basic_fairness_lp_allocation,
    fairness_constrained_allocation,
    fairness_upper_bound,
    naive_allocation,
    satisfies_basic_fairness,
    satisfies_fairness_constraint,
    single_hop_optimal_allocation,
    total_single_hop_throughput,
)
from repro.core.bounds import bound_vs_basic_consistency, max_subflows_per_clique
from repro.scenarios import fig1, fig2, fig4, fig5, fig6


@pytest.fixture(scope="module")
def fig1_analysis():
    return ContentionAnalysis(fig1.make_scenario())


@pytest.fixture(scope="module")
def fig6_analysis():
    return ContentionAnalysis(fig6.make_scenario())


class TestFig1:
    def test_naive(self, fig1_analysis):
        naive = naive_allocation(fig1_analysis)
        assert naive.share("1") == pytest.approx(0.25)
        assert naive.share("2") == pytest.approx(0.25)

    def test_basic(self, fig1_analysis):
        basic = basic_allocation(fig1_analysis)
        assert basic.shares == pytest.approx(fig1.PAPER_BASIC_SHARES)

    def test_fairness_constrained(self, fig1_analysis):
        alloc = fairness_constrained_allocation(fig1_analysis)
        assert alloc.share("1") == pytest.approx(1 / 3)
        assert alloc.share("2") == pytest.approx(1 / 3)
        assert alloc.total_effective_throughput == pytest.approx(2 / 3)

    def test_lp_optimal(self, fig1_analysis):
        alloc = basic_fairness_lp_allocation(fig1_analysis)
        assert alloc.share("1") == pytest.approx(0.5)
        assert alloc.share("2") == pytest.approx(0.25)
        assert alloc.total_effective_throughput == pytest.approx(0.75)

    def test_lp_supplies_basic_fairness(self, fig1_analysis):
        alloc = basic_fairness_lp_allocation(fig1_analysis)
        assert satisfies_basic_fairness(
            alloc.shares, fig1_analysis.scenario.flows
        )

    def test_two_tier_single_hop_optimum(self, fig1_analysis):
        tt = single_hop_optimal_allocation(fig1_analysis)
        expected = {
            ("1", 1): 0.75, ("1", 2): 0.25,
            ("2", 1): 0.375, ("2", 2): 0.375,
        }
        for sid, share in tt.subflow_shares.items():
            assert share == pytest.approx(
                expected[(sid.flow, sid.hop)], abs=1e-5
            )
        assert tt.shares["1"] == pytest.approx(0.25, abs=1e-5)
        assert tt.shares["2"] == pytest.approx(0.375, abs=1e-5)
        assert tt.total_effective_throughput == pytest.approx(
            0.625, abs=1e-4
        )
        assert total_single_hop_throughput(tt) == pytest.approx(
            1.75, abs=1e-4
        )

    def test_end_to_end_beats_single_hop_on_effective_total(
        self, fig1_analysis
    ):
        """The paper's headline comparison: 3B/4 > 5B/8."""
        lp = basic_fairness_lp_allocation(fig1_analysis)
        tt = single_hop_optimal_allocation(fig1_analysis)
        assert lp.total_effective_throughput > (
            tt.total_effective_throughput + 0.1
        )


class TestFig2:
    def test_single_hop_weighted(self):
        analysis = ContentionAnalysis(fig2.make_single_hop_scenario())
        alloc = fairness_constrained_allocation(analysis)
        assert alloc.shares == pytest.approx(fig2.PAPER_SINGLE_HOP)

    def test_multi_hop_fair_shares(self):
        analysis = ContentionAnalysis(fig2.make_multi_hop_scenario())
        alloc = basic_fairness_lp_allocation(analysis)
        assert alloc.shares == pytest.approx(fig2.PAPER_FAIR_SHARES)

    def test_unfair_strawman_penalizes_long_flow(self):
        scenario = fig2.make_multi_hop_scenario()
        unfair = fig2.unfair_time_share_allocation(scenario)
        assert unfair == pytest.approx(fig2.PAPER_UNFAIR_THROUGHPUT)
        # u2/u1 = 1/6 instead of w2/w1 = 1/2
        assert unfair["2"] / unfair["1"] == pytest.approx(1 / 6)


class TestFig4:
    def test_lp_allocation(self):
        analysis = fig4.make_analysis()
        alloc = basic_fairness_lp_allocation(analysis)
        for fid, expected in fig4.PAPER_ALLOCATION.items():
            assert alloc.share(fid) == pytest.approx(expected, abs=1e-6)

    def test_respects_weighted_basic_shares(self):
        analysis = fig4.make_analysis()
        alloc = basic_fairness_lp_allocation(analysis)
        assert satisfies_basic_fairness(alloc.shares,
                                        analysis.scenario.flows)

    def test_weighted_clique_number(self):
        analysis = fig4.make_analysis()
        # clique {F1.1, F2.1, F2.2, F3.1} weights 1+2+2+3 = 8
        assert analysis.weighted_clique_number() == 8.0


class TestFig5:
    def test_bound_unachievable(self):
        analysis = fig5.make_analysis()
        bound = fairness_upper_bound(analysis)
        assert bound.total_effective_throughput == pytest.approx(2.5)
        alloc = basic_fairness_lp_allocation(analysis)
        for fid in alloc.shares:
            assert alloc.share(fid) == pytest.approx(0.5)


class TestFig6:
    def test_centralized_lp(self, fig6_analysis):
        alloc = basic_fairness_lp_allocation(fig6_analysis)
        for fid, expected in fig6.PAPER_CENTRALIZED.items():
            assert alloc.share(fid) == pytest.approx(expected, abs=1e-6)

    def test_lp_satisfies_every_clique(self, fig6_analysis):
        alloc = basic_fairness_lp_allocation(fig6_analysis)
        for coeffs in fig6_analysis.all_coefficients():
            load = sum(alloc.share(fid) * n for fid, n in coeffs.items())
            assert load <= 1.0 + 1e-9

    def test_basic_shares_are_eighth(self, fig6_analysis):
        basic = basic_allocation(fig6_analysis)
        for fid in "12345":
            assert basic.share(fid) == pytest.approx(0.125)

    def test_fairness_constrained_uses_weighted_clique_number(
        self, fig6_analysis
    ):
        alloc = fairness_constrained_allocation(fig6_analysis)
        # ω_Ω = 3 (three F1 subflows in one clique)
        for fid in "12345":
            assert alloc.share(fid) == pytest.approx(1 / 3)
        assert satisfies_fairness_constraint(
            alloc.shares, fig6_analysis.scenario.weights()
        )


class TestBoundConsistency:
    @pytest.mark.parametrize("make", [
        lambda: ContentionAnalysis(fig1.make_scenario()),
        lambda: ContentionAnalysis(fig6.make_scenario()),
        fig4.make_analysis,
        fig5.make_analysis,
    ])
    def test_omega_below_weighted_virtual_lengths(self, make):
        assert bound_vs_basic_consistency(make())

    def test_max_subflows_per_clique_fig6(self, fig6_analysis):
        worst = max_subflows_per_clique(fig6_analysis)
        assert worst["1"] == 3
        assert worst["4"] == 2
        assert worst["2"] == 1

    def test_bound_dominates_lp_per_flow(self, fig6_analysis):
        """Prop. 1 share >= basic share for every flow."""
        bound = fairness_upper_bound(fig6_analysis)
        basic = basic_allocation(fig6_analysis)
        for fid in "12345":
            assert bound.share(fid) >= basic.share(fid) - 1e-9
