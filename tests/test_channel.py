"""Tests for the wireless channel: sensing, delivery, collisions."""

import pytest

from repro.core.model import Network
from repro.mac.channel import WirelessChannel
from repro.net.packet import Frame, FrameKind
from repro.sim import Simulator


class Recorder:
    """A minimal channel listener capturing everything."""

    def __init__(self):
        self.frames = []
        self.busy_edges = []

    def on_medium_busy(self):
        self.busy_edges.append("busy")

    def on_medium_idle(self):
        self.busy_edges.append("idle")

    def on_frame(self, frame):
        self.frames.append(frame)


def setup_line(positions):
    sim = Simulator()
    net = Network.from_positions(positions)
    chan = WirelessChannel(sim, net)
    listeners = {}
    for node in net.nodes:
        listeners[node] = Recorder()
        chan.register(node, listeners[node])
    return sim, net, chan, listeners


def frame(src, dst, duration=100.0, kind=FrameKind.RTS, nav=0.0):
    return Frame(kind=kind, src=src, dst=dst, duration=duration, nav=nav)


class TestDelivery:
    def test_in_range_nodes_receive(self):
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "b": (200, 0), "c": (400, 0)}
        )
        chan.transmit("a", frame("a", "b"))
        sim.run()
        assert len(l["b"].frames) == 1
        assert l["c"].frames == []  # out of range of a
        assert l["a"].frames == []  # own frame not received

    def test_sensing_edges(self):
        sim, net, chan, l = setup_line({"a": (0, 0), "b": (200, 0)})
        chan.transmit("a", frame("a", "b"))
        assert chan.medium_busy("b")
        assert not chan.medium_busy("a")  # own tx not sensed
        sim.run()
        assert not chan.medium_busy("b")
        assert l["b"].busy_edges == ["busy", "idle"]

    def test_stats(self):
        sim, net, chan, l = setup_line({"a": (0, 0), "b": (200, 0)})
        chan.transmit("a", frame("a", "b"))
        sim.run()
        assert chan.transmissions == 1
        assert chan.collisions == 0


class TestCollisions:
    def test_overlapping_in_range_transmissions_garble(self):
        """Two senders both audible at the receiver: nothing decodes."""
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "r": (200, 0), "b": (400, 0)}
        )
        chan.transmit("a", frame("a", "r"))
        sim.schedule(10, lambda: chan.transmit("b", frame("b", "r")))
        sim.run()
        assert l["r"].frames == []
        assert chan.collisions >= 1

    def test_hidden_terminal_collision(self):
        """a and b cannot hear each other but both reach r."""
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)}
        )
        assert not net.in_range("a", "b")
        chan.transmit("a", frame("a", "r"))
        chan.transmit("b", frame("b", "r"))
        sim.run()
        assert l["r"].frames == []

    def test_partial_overlap_still_garbles(self):
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)}
        )
        chan.transmit("a", frame("a", "r", duration=100))
        # Starts at 90, overlapping the last 10us of a's frame.
        sim.schedule(90, lambda: chan.transmit("b", frame("b", "r",
                                                          duration=100)))
        sim.run()
        assert l["r"].frames == []

    def test_back_to_back_frames_both_decode(self):
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)}
        )
        chan.transmit("a", frame("a", "r", duration=100))
        sim.schedule(100.0, lambda: chan.transmit(
            "b", frame("b", "r", duration=100)))
        sim.run()
        assert len(l["r"].frames) == 2

    def test_spatial_reuse_no_collision(self):
        """Far-apart pairs transmit concurrently and both succeed."""
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "b": (200, 0), "x": (2000, 0), "y": (2200, 0)}
        )
        chan.transmit("a", frame("a", "b"))
        chan.transmit("x", frame("x", "y"))
        sim.run()
        assert len(l["b"].frames) == 1
        assert len(l["y"].frames) == 1

    def test_half_duplex_receiver_transmitting(self):
        """A node cannot decode a frame while it is itself transmitting."""
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "b": (200, 0), "c": (400, 0)}
        )
        chan.transmit("b", frame("b", "c", duration=100))
        chan.transmit("a", frame("a", "b", duration=100))
        sim.run()
        assert l["b"].frames == []  # b was talking
        # c's reception of b's frame also collides? a is out of c's range,
        # so c decodes b fine.
        assert len(l["c"].frames) == 1

    def test_busy_count_nested_transmissions(self):
        sim, net, chan, l = setup_line(
            {"a": (0, 0), "r": (200, 0), "b": (400, 0)}
        )
        chan.transmit("a", frame("a", "r", duration=100))
        sim.schedule(50, lambda: chan.transmit("b", frame("b", "r",
                                                          duration=100)))
        sim.run()
        # r saw busy at 0, stayed busy through 150, then idle once.
        assert l["r"].busy_edges == ["busy", "idle"]


def test_register_unknown_node_rejected():
    sim = Simulator()
    net = Network.from_positions({"a": (0, 0)})
    chan = WirelessChannel(sim, net)
    with pytest.raises(KeyError):
        chan.register("zz", Recorder())
