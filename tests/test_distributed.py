"""Tests for the distributed phase-1 algorithm (Table I reproduction)."""

import pytest

from repro.core import (
    ContentionAnalysis,
    DistributedAllocator,
    Flow,
    Network,
    Scenario,
    run_centralized,
    run_distributed,
    satisfies_basic_fairness,
)
from repro.scenarios import fig1, fig6


@pytest.fixture(scope="module")
def allocator():
    alloc = DistributedAllocator(fig6.make_scenario())
    alloc.run()
    return alloc


def clique_names(cliques):
    return sorted(sorted(str(s) for s in c) for c in cliques)


class TestLocalViews(object):
    def test_node_a_knows_only_f1(self, allocator):
        view = allocator.views["A"]
        assert {sid.flow for sid in view.known} == {"1"}
        assert clique_names(view.local_cliques) == [
            ["F1.1", "F1.2", "F1.3"]
        ]

    def test_node_f_view_matches_table1(self, allocator):
        view = allocator.views["F"]
        assert {sid.flow for sid in view.known} == {"1", "2", "3"}
        assert clique_names(view.local_cliques) == [
            ["F1.3", "F1.4", "F2.1"],
            ["F2.1", "F3.1"],
        ]

    def test_node_h_view_matches_table1(self, allocator):
        view = allocator.views["H"]
        assert {sid.flow for sid in view.known} == {"2", "3", "4"}
        assert clique_names(view.local_cliques) == [
            ["F2.1", "F3.1"],
            ["F3.1", "F4.1"],
        ]

    def test_node_j_view_matches_table1(self, allocator):
        view = allocator.views["J"]
        assert {sid.flow for sid in view.known} == {"3", "4", "5"}
        assert clique_names(view.local_cliques) == [
            ["F3.1", "F4.1"],
            ["F4.1", "F4.2", "F5.1"],
        ]

    def test_propagation_brings_omega3_to_a(self, allocator):
        view = allocator.views["A"]
        all_cliques = clique_names(view.all_cliques())
        assert ["F1.3", "F1.4", "F2.1"] in all_cliques
        assert ["F1.2", "F1.3", "F1.4"] in all_cliques


class TestLocalProblems:
    def test_table1_basic_per_unit(self, allocator):
        for node, expected in fig6.TABLE1_LOCAL_BASIC.items():
            assert allocator.problems[node].basic_per_unit == pytest.approx(
                expected
            ), node

    def test_table1_solutions(self, allocator):
        for node, expected in fig6.TABLE1_LOCAL_SOLUTIONS.items():
            sol = allocator.problems[node].solution
            for fid, value in expected.items():
                assert sol[f"r_{fid}"] == pytest.approx(value, abs=1e-5), (
                    node, fid
                )

    def test_local_problem_for_flow(self, allocator):
        problem = allocator.local_problem_for_flow("2")
        assert problem.node == "F"
        assert "2" in problem.flow_ids


class TestDistributedAllocation:
    def test_fig6_shares(self):
        result = run_distributed(fig6.make_scenario())
        for fid, expected in fig6.OUR_DISTRIBUTED.items():
            assert result.share(fid) == pytest.approx(expected, abs=1e-5)

    def test_documented_deviation_is_only_f5(self):
        """Everything except F5 matches the paper's 2PA-D exactly."""
        result = run_distributed(fig6.make_scenario())
        for fid in "1234":
            assert result.share(fid) == pytest.approx(
                fig6.PAPER_DISTRIBUTED[fid], abs=1e-5
            )

    def test_distributed_total_below_centralized(self):
        scenario = fig6.make_scenario()
        dist = run_distributed(scenario)
        cent = run_centralized(scenario)
        assert (dist.total_effective_throughput
                <= cent.total_effective_throughput + 1e-9)

    def test_local_shares_at_least_global_basic(self):
        """Local basic shares are *higher* than global ones (Sec. IV-B)."""
        scenario = fig6.make_scenario()
        dist = run_distributed(scenario)
        assert satisfies_basic_fairness(dist.shares, scenario.flows)

    def test_fig1_distributed_equals_centralized(self):
        """In Fig. 1 every node sees the whole group: no optimality gap."""
        scenario = fig1.make_scenario()
        dist = run_distributed(scenario)
        cent = run_centralized(scenario)
        for fid in ("1", "2"):
            assert dist.share(fid) == pytest.approx(cent.share(fid),
                                                    abs=1e-5)

    def test_runs_are_deterministic(self):
        a = run_distributed(fig6.make_scenario()).shares
        b = run_distributed(fig6.make_scenario()).shares
        assert a == b


def _line_scenario(path, name, extra_flows=()):
    """Nodes 200 m apart on a line (250 m range), one flow down ``path``."""
    nodes = sorted({n for n in path} | {n for f in extra_flows for n in f})
    positions = {n: (200.0 * i, 0.0) for i, n in enumerate(sorted(nodes))}
    network = Network.from_positions(positions, tx_range=250.0)
    flows = [Flow("1", list(path), 1.0)]
    flows += [Flow(str(i + 2), list(p), 1.0)
              for i, p in enumerate(extra_flows)]
    return Scenario(network, flows, name=name, capacity=1.0)


class TestDegeneratePaths:
    """Path lengths 1–2 exercise the propagation loop's edge cases: a
    single-hop flow has no downstream node to gossip with, and a 2-hop
    flow's source already holds every constraint after one exchange."""

    def test_single_one_hop_flow_gets_full_capacity(self):
        scenario = _line_scenario("AB", "one-hop")
        result = run_distributed(scenario)
        assert result.share("1") == pytest.approx(1.0)
        assert result.strategy == "distributed-local-lp"

    def test_single_two_hop_flow_gets_half_capacity(self):
        # F1.1 and F1.2 share the relay, so the clique {F1.1, F1.2}
        # bounds the end-to-end share at B/2.
        scenario = _line_scenario("ABC", "two-hop")
        result = run_distributed(scenario)
        assert result.share("1") == pytest.approx(0.5)

    def test_one_hop_flow_converges_in_zero_exchanges(self):
        scenario = _line_scenario("AB", "one-hop")
        allocator = DistributedAllocator(scenario)
        allocator.run()
        conv = allocator.convergence
        assert conv["status"] == "converged"
        assert conv["rounds_per_flow"]["1"] <= 1
        view = allocator.views["A"]
        assert {sid.flow for sid in view.known} == {"1"}

    def test_degenerate_paths_match_centralized(self):
        for path in ("AB", "ABC"):
            scenario = _line_scenario(path, f"line-{len(path) - 1}hop")
            dist = run_distributed(scenario)
            cent = run_centralized(scenario)
            assert dist.share("1") == pytest.approx(cent.share("1"),
                                                    abs=1e-9), path

    def test_one_hop_contending_with_two_hop(self):
        # Flow 2 (C->D->E) contends with flow 1 (A->B) at B/C; virtual
        # lengths are 1 and 2, so basic shares are 1/3 each and the
        # lexicographic optimum lifts the short flow.
        scenario = _line_scenario("AB", "mixed", extra_flows=["CDE"])
        result = run_distributed(scenario)
        assert satisfies_basic_fairness(result.shares, scenario.flows)
        analysis = ContentionAnalysis(scenario)
        for clique in analysis.cliques:
            coeffs = analysis.clique_coefficients(clique)
            load = sum(n * result.share(f) for f, n in coeffs.items())
            assert load <= scenario.capacity + 1e-9

    def test_degenerate_paths_unchanged_by_lossless_channel(self):
        from repro.resilience import FaultInjector, FaultPlan, UnreliableChannel
        from repro.sim.rng import RngRegistry

        for path in ("AB", "ABC"):
            scenario = _line_scenario(path, f"line-{len(path) - 1}hop")
            plain = DistributedAllocator(scenario).run().shares
            channel = UnreliableChannel(FaultInjector(
                FaultPlan(), RngRegistry(0), prefix=("degenerate", path)
            ))
            resilient = DistributedAllocator(
                scenario, channel=channel
            ).run().shares
            assert resilient == plain, path


class TestCentralizedCoordinator:
    def test_reports_and_broadcast(self):
        from repro.core import CentralizedCoordinator

        scenario = fig6.make_scenario()
        coord = CentralizedCoordinator(scenario)
        reports = coord.reports
        assert {r.flow_id: r.virtual_length for r in reports} == {
            "1": 3, "2": 1, "3": 1, "4": 2, "5": 1
        }
        assert len(coord.observations) == 9  # total subflows
        result = coord.run()
        assert result.share("3") == pytest.approx(2 / 3)
        broadcast = coord.broadcast()
        # Node A transmits F1.1 only.
        assert list(broadcast["A"]) == [
            s.sid for s in scenario.flow("1").subflows[:1]
        ]
        assert broadcast["B"][scenario.flow("1").subflows[1].sid] == (
            pytest.approx(1 / 3)
        )

    def test_allocated_shares_accessor(self):
        from repro.core import CentralizedCoordinator

        coord = CentralizedCoordinator(fig1.make_scenario())
        shares = coord.allocated_shares()
        assert shares["1"] == pytest.approx(0.5)
