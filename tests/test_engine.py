"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append("c"))
        sim.schedule(10, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(5.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []
        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5, lambda: fired.append(("inner", sim.now)))
        sim.schedule(10, outer)
        sim.run()
        assert fired == [("outer", 10.0), ("inner", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(5, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []
        assert not ev.active

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(5, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        ev = sim.schedule(2, lambda: None)
        ev.cancel()
        assert sim.pending_events() == 1


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("in"))
        sim.schedule(100, lambda: fired.append("out"))
        sim.run_until(50)
        assert fired == ["in"]
        assert sim.now == 50.0
        sim.run_until(200)
        assert fired == ["in", "out"]

    def test_clock_reaches_horizon_with_empty_heap(self):
        sim = Simulator()
        sim.run_until(1000)
        assert sim.now == 1000.0

    def test_backwards_horizon_rejected(self):
        sim = Simulator()
        sim.run_until(10)
        with pytest.raises(ValueError):
            sim.run_until(5)

    def test_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(1))
        sim.run_until(10)
        assert fired == [1]

    def test_stop_breaks_loop(self):
        sim = Simulator()
        fired = []
        def first():
            fired.append(1)
            sim.stop()
        sim.schedule(1, first)
        sim.schedule(2, lambda: fired.append(2))
        sim.run_until(10)
        assert fired == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_processed == 5


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert not sim.step()
    sim.schedule(1, lambda: None)
    assert sim.step()
    assert not sim.step()
