"""Edge-case tests for the MAC layer: NAV wakeups, responder cleanup,
collision accounting, and the fair-backoff policy driven through the full
entity stack."""

import pytest

from repro.core.model import Network, SubflowId
from repro.mac import (
    DcfPolicy,
    FairBackoffPolicy,
    MacEntity,
    MacState,
    MacTimings,
    WirelessChannel,
)
from repro.net.packet import DataPacket, Frame, FrameKind
from repro.sim import RngRegistry, Simulator, Tracer


def build(positions, policy_cls=DcfPolicy, shares=None, **policy_kw):
    sim = Simulator()
    net = Network.from_positions(positions)
    tracer = Tracer(["mac"])
    chan = WirelessChannel(sim, net, tracer)
    rng = RngRegistry(5)
    timings = MacTimings()
    deliveries = []
    macs = {}
    for node in net.nodes:
        if policy_cls is DcfPolicy:
            policy = DcfPolicy(node, timings, **policy_kw)
        else:
            policy = FairBackoffPolicy(
                node, timings, (shares or {}).get(node, {}), **policy_kw
            )
        macs[node] = MacEntity(
            node=node, sim=sim, channel=chan, policy=policy, rng=rng,
            timings=timings, tracer=tracer,
            on_delivery=lambda n, p: deliveries.append((n, p)),
        )
    return sim, net, chan, macs, deliveries, tracer


class TestNavBehavior:
    def test_overheard_rts_sets_nav(self):
        sim, net, chan, macs, deliveries, _ = build(
            {"a": (0, 0), "b": (200, 0), "c": (390, 0)}
        )
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(1200)  # past DIFS+backoff+RTS for most draws
        # c heard b's CTS (b->a reply is out of c's... b is at 200,
        # c at 390: in range) or a's RTS is out of range; either way c's
        # nav should eventually cover the exchange.
        sim.run_until(5000)
        assert macs["c"].nav_until > 0

    def test_nav_expiry_wakes_pending_sender(self):
        """c defers to an overheard exchange, then transmits its own."""
        sim, net, chan, macs, deliveries, _ = build(
            {"a": (0, 0), "b": (200, 0), "c": (390, 0), "d": (590, 0)}
        )
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        macs["c"].enqueue(DataPacket("2", ("c", "d"), 512, 0.0))
        sim.run_until(60_000)
        flows = {p.flow_id for _, p in deliveries}
        assert flows == {"1", "2"}


class TestResponderCleanup:
    def test_new_exchange_accepted_after_stale_expectation(self):
        """If DATA never follows our CTS, the responder must accept a
        fresh RTS once the reservation window passes."""
        sim, net, chan, macs, deliveries, _ = build(
            {"a": (0, 0), "b": (200, 0)}
        )
        t = MacTimings()
        # Forge an RTS to b whose sender never follows up (we bypass a's
        # MAC and inject the frame directly).
        ghost = DataPacket("9", ("a", "b"), 512, 0.0)
        rts = Frame(FrameKind.RTS, "a", "b", t.rts_duration,
                    nav=t.exchange_remainder_after_rts(512), packet=ghost)
        chan.transmit("a", rts)
        sim.run_until(20_000)  # reservation long expired
        # Now a real exchange must go through.
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(80_000)
        assert any(p.flow_id == "1" for _, p in deliveries)


class TestStatistics:
    def test_success_and_failure_counters(self):
        sim, net, chan, macs, deliveries, tracer = build(
            {"a": (0, 0), "b": (1000, 0)}  # unreachable
        )
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(2_000_000)
        assert macs["a"].tx_success == 0
        assert macs["a"].tx_failures == MacTimings().retry_limit + 1
        assert macs["a"].mac_drops == 1
        assert tracer.count("mac", "cts-timeout") >= 1
        assert tracer.count("mac", "retry-drop") == 1

    def test_collision_counter_increments(self):
        sim, net, chan, macs, _, _ = build(
            {"a": (0, 0), "r": (240, 0), "b": (480, 0)}
        )
        # Two deliberately overlapping frames addressed to r.
        t = MacTimings()
        for node in ("a", "b"):
            chan.transmit(node, Frame(FrameKind.RTS, node, "r",
                                      t.rts_duration))
        sim.run_until(10_000)
        assert chan.collisions >= 1

    def test_channel_transmission_counter(self):
        sim, net, chan, macs, deliveries, _ = build(
            {"a": (0, 0), "b": (200, 0)}
        )
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(50_000)
        # RTS + CTS + DATA + ACK
        assert chan.transmissions == 4


class TestFairBackoffThroughEntity:
    def test_weighted_shares_realized_on_one_link(self):
        """Two subflows on one node drain 3:1 via internal finish tags."""
        shares = {
            "a": {SubflowId("h", 1): 0.6, SubflowId("l", 1): 0.2},
        }
        sim, net, chan, macs, deliveries, _ = build(
            {"a": (0, 0), "b": (200, 0)},
            policy_cls=FairBackoffPolicy, shares=shares,
            queue_capacity=400,
        )
        # Keep both queues backlogged for the whole horizon: the ratio is
        # only meaningful while both compete.
        for i in range(400):
            macs["a"].enqueue(DataPacket("h", ("a", "b"), 512, 0.0, seq=i,
                                         hop=1))
            macs["a"].enqueue(DataPacket("l", ("a", "b"), 512, 0.0, seq=i,
                                         hop=1))
        sim.run_until(600_000)
        high = sum(1 for _, p in deliveries if p.flow_id == "h")
        low = sum(1 for _, p in deliveries if p.flow_id == "l")
        assert high + low < 400  # still backlogged
        assert high / low == pytest.approx(3.0, rel=0.1)

    def test_tags_propagate_through_real_frames(self):
        """After an exchange, the receiver's table holds the sender's
        subflow tag (learned from RTS/DATA piggybacks)."""
        shares = {"a": {SubflowId("1", 1): 0.5}}
        sim, net, chan, macs, deliveries, _ = build(
            {"a": (0, 0), "b": (200, 0)},
            policy_cls=FairBackoffPolicy, shares=shares,
        )
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(50_000)
        table = macs["b"].policy.table
        assert SubflowId("1", 1) in table
        owner, tag, heard = table[SubflowId("1", 1)]
        assert owner == "a"

    def test_third_party_learns_tags_from_cts_echo(self):
        """A node that only hears the *receiver* still learns the
        sender's tag via the CTS echo (the fix that makes cross-region
        coordination work)."""
        shares = {"a": {SubflowId("1", 1): 0.5}}
        positions = {
            "a": (0, 0), "b": (240, 0),
            # w hears b (240 away) but not a (480).
            "w": (480, 0),
        }
        sim, net, chan, macs, deliveries, _ = build(
            positions, policy_cls=FairBackoffPolicy, shares=shares,
        )
        assert not net.in_range("a", "w")
        macs["a"].enqueue(DataPacket("1", ("a", "b"), 512, 0.0))
        sim.run_until(50_000)
        table = macs["w"].policy.table
        assert SubflowId("1", 1) in table
        assert table[SubflowId("1", 1)][0] == "a"
