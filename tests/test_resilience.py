"""Tests for repro.resilience: faults, lossy channel, degradation, chaos."""

import math

import pytest

from repro import obs
from repro.core import ContentionAnalysis, DistributedAllocator
from repro.core.allocation import build_basic_fairness_lp
from repro.core.fairness_defs import basic_shares
from repro.obs import MetricsRegistry
from repro.resilience import (
    CONVERGED,
    CONVERGED_PARTIAL,
    TIMED_OUT,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    NodeCrash,
    ResilientLPBackend,
    UnreliableChannel,
    basic_share_feasible,
    enforce_clique_capacity,
    global_basic_shares,
    run_chaos,
    worst_status,
)
from repro.scenarios import (
    cross,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    grid_scenario,
    parallel_chains,
    star,
)
from repro.sim.rng import RngRegistry
from repro.verify.invariants import check_clique_capacity


@pytest.fixture(autouse=True)
def _no_active_registry():
    previous = obs.get_registry()
    obs.set_registry(None)
    yield
    obs.set_registry(previous)


def lossless_channel(prefix, seed=0, **kwargs):
    injector = FaultInjector(FaultPlan(), RngRegistry(seed), prefix=prefix)
    return UnreliableChannel(injector, **kwargs)


LIBRARY = {
    "fig1": fig1.make_scenario,
    "fig2_single": fig2.make_single_hop_scenario,
    "fig2_multi": fig2.make_multi_hop_scenario,
    "fig3_chain": fig3.make_chain_scenario,
    "fig3_shortcut": fig3.make_shortcut_scenario,
    "fig4": fig4.make_scenario,
    "fig5": fig5.make_scenario,
    "fig6": fig6.make_scenario,
    "parallel_chains": parallel_chains,
    "cross": cross,
    "grid": grid_scenario,
    "star": star,
}


class TestLosslessDifferential:
    """``channel=None`` and a lossless channel must agree bit-for-bit."""

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_library_scenario_bitwise_identical(self, name):
        scenario = LIBRARY[name]()
        analysis = ContentionAnalysis(scenario)
        base = DistributedAllocator(scenario, analysis=analysis).run()
        channel = lossless_channel(("diff", name))
        lossy = DistributedAllocator(
            scenario, analysis=analysis, channel=channel
        ).run()
        assert lossy.shares == base.shares  # bitwise, not approx

    def test_lossless_channel_reports_converged(self):
        scenario = fig6.make_scenario()
        channel = lossless_channel(("diff", "fig6-status"))
        allocator = DistributedAllocator(scenario, channel=channel)
        allocator.run()
        conv = allocator.convergence
        assert conv["status"] == CONVERGED
        assert all(info["confirmed"] for info in conv["per_flow"].values())
        assert conv["channel"]["dropped"] == 0
        assert conv["channel"]["retransmits"] == 0


class TestFaultPlan:
    def test_dict_round_trip(self):
        plan = FaultPlan.draw(
            RngRegistry(3).stream(("t", "plan")),
            nodes=["a", "b", "c", "d", "e"],
            loss=0.3,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()

    def test_default_plan_is_lossless(self):
        assert FaultPlan().lossless
        assert not FaultPlan(default_link=LinkFaults(drop=0.1)).lossless
        assert not FaultPlan(crashes=(NodeCrash("x", 0, None),)).lossless

    def test_shrink_candidates_simplify(self):
        plan = FaultPlan.draw(
            RngRegistry(1).stream(("t", "shrink")),
            nodes=["a", "b", "c", "d", "e", "f"],
            loss=0.3,
            crash_prob=1.0,
        )
        assert plan.crashes
        candidates = plan.shrink_candidates()
        assert candidates
        assert any(not c.crashes for c in candidates)

    def test_worst_status_ordering(self):
        assert worst_status([]) == CONVERGED
        assert worst_status([CONVERGED, CONVERGED_PARTIAL]) == (
            CONVERGED_PARTIAL
        )
        assert worst_status(
            [CONVERGED_PARTIAL, TIMED_OUT, CONVERGED]
        ) == TIMED_OUT


class TestFaultedRuns:
    def test_crashed_source_degrades_to_basic_share(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        flow1 = scenario.flows[0]
        plan = FaultPlan(crashes=(NodeCrash(flow1.source, 0, None),))
        channel = UnreliableChannel(
            FaultInjector(plan, RngRegistry(0), prefix=("t", "crash"))
        )
        allocator = DistributedAllocator(
            scenario, analysis=analysis, channel=channel
        )
        result = allocator.run()
        conv = allocator.convergence
        assert conv["status"] == CONVERGED_PARTIAL
        assert not conv["per_flow"][flow1.flow_id]["confirmed"]
        assert result.strategy == "distributed-degraded"
        basic = global_basic_shares(analysis)
        assert result.shares[flow1.flow_id] == pytest.approx(
            basic[flow1.flow_id]
        )
        assert check_clique_capacity(analysis, result.shares).ok

    def test_healed_rerun_restores_full_shares(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        flow1 = scenario.flows[0]
        plan = FaultPlan(crashes=(NodeCrash(flow1.source, 0, None),))
        channel = UnreliableChannel(
            FaultInjector(plan, RngRegistry(0), prefix=("t", "heal-f"))
        )
        degraded = DistributedAllocator(
            scenario, analysis=analysis, channel=channel
        ).run()
        healed = DistributedAllocator(
            scenario, analysis=analysis,
            channel=lossless_channel(("t", "heal-l")),
        ).run()
        base = DistributedAllocator(scenario, analysis=analysis).run()
        assert healed.shares == base.shares
        basic = global_basic_shares(analysis)
        for fid, share in healed.shares.items():
            assert share >= basic[fid] - 1e-9
            assert share >= degraded.shares[fid] - 1e-9

    def test_tiny_round_budget_times_out(self):
        scenario = fig1.make_scenario()
        channel = lossless_channel(("t", "timeout"), max_rounds=1)
        allocator = DistributedAllocator(scenario, channel=channel)
        result = allocator.run()  # must return, not raise
        assert allocator.convergence["status"] == TIMED_OUT
        assert result.strategy == "distributed-degraded"
        analysis = allocator.analysis
        assert check_clique_capacity(analysis, result.shares).ok

    def test_heavy_loss_is_survivable_and_safe(self):
        scenario = fig6.make_scenario()
        analysis = ContentionAnalysis(scenario)
        plan = FaultPlan(default_link=LinkFaults(drop=0.6, ack_drop=0.3))
        channel = UnreliableChannel(
            FaultInjector(plan, RngRegistry(5), prefix=("t", "loss"))
        )
        allocator = DistributedAllocator(
            scenario, analysis=analysis, channel=channel
        )
        result = allocator.run()
        assert allocator.convergence["status"] in (
            CONVERGED, CONVERGED_PARTIAL, TIMED_OUT
        )
        assert check_clique_capacity(analysis, result.shares).ok
        stats = allocator.convergence["channel"]
        assert stats["dropped"] > 0
        assert stats["retransmits"] > 0

    def test_channel_metrics_land_in_registry(self):
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            scenario = fig1.make_scenario()
            DistributedAllocator(
                scenario, channel=lossless_channel(("t", "metrics"))
            ).run()
        finally:
            obs.set_registry(None)
        counters = registry.snapshot()["counters"]
        assert counters["2pad.messages"] > 0
        assert counters["resilience.channel.converged"] == 1


class TestCapacityGovernor:
    def test_overloaded_cliques_scaled_to_capacity(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        inflated = {f.flow_id: scenario.capacity for f in scenario.flows}
        safe, clamped = enforce_clique_capacity(analysis, inflated)
        assert clamped
        assert check_clique_capacity(analysis, safe).ok
        assert all(safe[fid] <= inflated[fid] for fid in inflated)

    def test_feasible_shares_untouched(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        shares = DistributedAllocator(scenario, analysis=analysis).run().shares
        safe, clamped = enforce_clique_capacity(analysis, shares)
        assert not clamped
        assert safe == shares  # bitwise: governor must be a no-op

    def test_basic_shares_survive_governor(self):
        scenario = fig6.make_scenario()
        analysis = ContentionAnalysis(scenario)
        basic = global_basic_shares(analysis)
        expected = {}
        for group in analysis.groups:
            expected.update(basic_shares(group, scenario.capacity))
        assert basic == expected
        _safe, clamped = enforce_clique_capacity(analysis, basic)
        assert not clamped  # paper: basic shares are jointly feasible

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_floor_aware_governor_never_erodes_floors(self, name):
        """With ``floors=`` the governor resolves an overload entirely
        on the flows above their Sec. II-D basic share: every clique
        ends within Eq. (6) and no flow lands below its floor."""
        scenario = LIBRARY[name]()
        analysis = ContentionAnalysis(scenario)
        floors = global_basic_shares(analysis)
        inflated = {f.flow_id: scenario.capacity for f in scenario.flows}
        safe, clamped = enforce_clique_capacity(
            analysis, inflated, floors=floors
        )
        # fig5's flows don't interfere at all: full capacity each is
        # already feasible and the governor must not touch it.
        assert clamped == (not check_clique_capacity(analysis,
                                                     inflated).ok)
        assert check_clique_capacity(analysis, safe).ok
        if basic_share_feasible(analysis):
            for fid, floor in floors.items():
                assert safe[fid] >= floor - 1e-9, (fid, safe[fid], floor)
        else:
            # fig3's shortcut: the floors alone overfill the clique, so
            # Eq. (6) wins and at least one flow is pushed below.
            assert any(safe[fid] < floor for fid, floor in floors.items())

    def test_floor_aware_governor_is_noop_on_feasible_shares(self):
        scenario = fig6.make_scenario()
        analysis = ContentionAnalysis(scenario)
        shares = DistributedAllocator(scenario, analysis=analysis).run().shares
        safe, clamped = enforce_clique_capacity(
            analysis, shares, floors=global_basic_shares(analysis)
        )
        assert not clamped
        assert safe == shares  # bitwise

    def test_infeasible_floors_sacrificed_for_safety(self):
        """When the floors alone overfill a clique (reachable only on
        pathological topologies), Eq. (6) wins: the governor scales
        everyone and counts the sacrifice."""
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        bogus_floors = {f.flow_id: scenario.capacity
                        for f in scenario.flows}
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            safe, clamped = enforce_clique_capacity(
                analysis, dict(bogus_floors), floors=bogus_floors
            )
        finally:
            obs.set_registry(None)
        assert clamped
        assert check_clique_capacity(analysis, safe).ok
        counters = registry.snapshot()["counters"]
        assert counters["resilience.degrade.floor_sacrificed"] >= 1

    def test_degraded_allocation_respects_floors(self):
        """The degradation ladder's governor pass is floor-aware: a
        partially-converged mixture never pushes a *confirmed* flow
        below its basic share."""
        scenario = fig6.make_scenario()
        analysis = ContentionAnalysis(scenario)
        flow1 = scenario.flows[0]
        plan = FaultPlan(crashes=(NodeCrash(flow1.source, 0, None),))
        channel = UnreliableChannel(
            FaultInjector(plan, RngRegistry(2), prefix=("t", "floor"))
        )
        allocator = DistributedAllocator(
            scenario, analysis=analysis, channel=channel
        )
        result = allocator.run()
        assert result.strategy == "distributed-degraded"
        floors = global_basic_shares(analysis)
        for fid, share in result.shares.items():
            assert share >= floors[fid] - 1e-9
        assert check_clique_capacity(analysis, result.shares).ok


class TestLPFallbackChain:
    def _lp(self):
        scenario = fig1.make_scenario()
        analysis = ContentionAnalysis(scenario)
        return build_basic_fairness_lp(
            analysis, analysis.groups[0], scenario.capacity
        )

    def test_warm_path_serves_by_default(self):
        backend = ResilientLPBackend()
        solution = backend(self._lp())
        assert solution.status == "optimal"
        assert backend.fallbacks == 0
        assert backend.served["warm"] == 1

    def test_forced_demotions_reach_exact_solver(self, monkeypatch):
        def boom(*_args, **_kwargs):
            raise RuntimeError("float simplex disabled for test")

        monkeypatch.setattr("repro.perf.warm.solve_simplex", boom)
        monkeypatch.setattr("repro.resilience.degrade.solve_simplex", boom)
        registry = MetricsRegistry()
        obs.set_registry(registry)
        try:
            backend = ResilientLPBackend()
            solution = backend(self._lp())
        finally:
            obs.set_registry(None)
        assert solution.status == "optimal"
        assert all(math.isfinite(v) for v in solution.values.values())
        assert backend.fallbacks == 2
        assert backend.served == {"warm": 0, "cold": 0, "exact": 1}
        counters = registry.snapshot()["counters"]
        assert counters["resilience.lp.fallback"] == 2
        assert counters["resilience.lp.fallback.warm"] == 1
        assert counters["resilience.lp.fallback.cold"] == 1

    def test_whole_chain_failing_raises(self, monkeypatch):
        def boom(*_args, **_kwargs):
            raise RuntimeError("no solver")

        monkeypatch.setattr("repro.perf.warm.solve_simplex", boom)
        monkeypatch.setattr("repro.resilience.degrade.solve_simplex", boom)
        monkeypatch.setattr(ResilientLPBackend, "_solve_exact",
                            staticmethod(boom))
        backend = ResilientLPBackend()
        with pytest.raises(RuntimeError, match="every LP backend stage"):
            backend(self._lp())

    def test_exact_matches_float_on_allocation(self, monkeypatch):
        scenario = fig6.make_scenario()
        analysis = ContentionAnalysis(scenario)
        base = DistributedAllocator(scenario, analysis=analysis).run()

        def boom(*_args, **_kwargs):
            raise RuntimeError("float simplex disabled for test")

        monkeypatch.setattr("repro.perf.warm.solve_simplex", boom)
        monkeypatch.setattr("repro.resilience.degrade.solve_simplex", boom)
        backend = ResilientLPBackend()
        exact = DistributedAllocator(
            scenario, backend=backend, analysis=analysis
        ).run()
        assert backend.served["exact"] > 0
        # The exact stage slackens borderline bounds by 1e-9 (same as the
        # float-vs-exact oracle), so agreement is to float tolerance, not
        # bitwise.
        for fid, share in base.shares.items():
            assert exact.shares[fid] == pytest.approx(share, abs=1e-7)


class TestPartialConvergenceRecord:
    def test_mid_flow_raise_leaves_partial_stats(self, monkeypatch):
        scenario = fig1.make_scenario()
        allocator = DistributedAllocator(scenario)
        allocator.build_local_views()
        def observe_raises(name, value):
            raise RuntimeError("exchange interrupted")

        # The observe() hook fires right after a flow's round count is
        # recorded, so raising on the first call interrupts the exchange
        # with exactly one flow's stats in place.
        monkeypatch.setattr(
            "repro.core.distributed.observe", observe_raises
        )
        with pytest.raises(RuntimeError):
            allocator.propagate_constraints()
        conv = allocator.convergence
        assert conv["status"] == "in-progress"
        first = scenario.flows[0].flow_id
        assert list(conv["rounds_per_flow"]) == [first]
        assert conv["max_rounds"] == conv["rounds_per_flow"][first]
        assert conv["total_messages"] > 0


class TestChaosCampaign:
    def test_small_campaign_holds_invariants(self):
        report = run_chaos(cases=4, seed=0, loss_rates=(0.0, 0.3))
        assert report.ok, [v.to_dict() for v in report.violations]
        assert sum(report.statuses.values()) == 8
        assert report.checks["chaos.clique_capacity"]["fail"] == 0
        rendered = report.render()
        assert "all safety invariants held" in rendered

    def test_injected_fault_is_caught(self):
        report = run_chaos(
            cases=2, seed=0, loss_rates=(0.1,), inject_fault=True,
            max_violations=2,
        )
        assert not report.ok
        assert any(
            v.check == "chaos.clique_capacity" for v in report.violations
        )
        # Violations carry everything needed to replay.
        v = report.violations[0]
        assert v.scenario["flows"]
        assert FaultPlan.from_dict(v.fault_plan).to_dict() == v.fault_plan

    def test_report_round_trips_to_dict(self):
        report = run_chaos(cases=2, seed=1, loss_rates=(0.0,))
        doc = report.to_dict()
        assert doc["ok"] is report.ok
        assert doc["cases"] == 2
        assert set(doc["checks"]) == set(report.checks)


class TestFuzzerFaultsMode:
    def test_faults_mode_adds_safety_checks(self):
        from repro.verify.fuzzer import run_fuzz

        report = run_fuzz(cases=3, seed=0, faults=True)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.checks["faults.no_raise"]["pass"] == 3
        assert report.checks["faults.clique_capacity"]["pass"] == 3
